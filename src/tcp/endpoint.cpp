#include "tcp/endpoint.h"

#include <algorithm>

#include "packet/tcp_format.h"
#include "util/logging.h"

namespace snake::tcp {

using packet::kTcpAck;
using packet::kTcpFin;
using packet::kTcpPsh;
using packet::kTcpRst;
using packet::kTcpSyn;
using packet::kTcpUrg;

namespace {
constexpr Duration kMaxRto = Duration::seconds(60.0);

/// Flag combinations that are meaningful arrivals on a connection. Anything
/// else is "nonsensical" in the paper's sense (e.g. SYN+FIN+ACK+RST).
bool flags_are_sensible(std::uint8_t flags) {
  switch (flags & 0x3F) {
    case kTcpSyn:
    case kTcpSyn | kTcpAck:
    case kTcpAck:
    case kTcpAck | kTcpPsh:
    case kTcpAck | kTcpUrg:
    case kTcpAck | kTcpPsh | kTcpUrg:
    case kTcpFin | kTcpAck:
    case kTcpFin | kTcpAck | kTcpPsh:
    case kTcpFin:
    case kTcpRst:
    case kTcpRst | kTcpAck:
      return true;
    default:
      return false;
  }
}
}  // namespace

const char* to_string(TcpState state) {
  switch (state) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpEndpoint::TcpEndpoint(sim::Node& node, const TcpProfile& profile, TcpEndpointConfig config,
                         TcpCallbacks callbacks, snake::Rng rng,
                         std::function<void()> on_released)
    : node_(node),
      profile_(&profile),
      config_(config),
      callbacks_(std::move(callbacks)),
      rng_(rng),
      on_released_(std::move(on_released)),
      cc_(config.mss, profile),
      rto_(config.initial_rto) {
  rto_ = std::max(rto_, profile_->min_rto);
}

TcpEndpoint::~TcpEndpoint() {
  retransmit_timer_.cancel();
  time_wait_timer_.cancel();
}

// ---------------------------------------------------------------- app API

void TcpEndpoint::connect() {
  iss_ = rng_.next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_max_ = snd_nxt_;
  set_state(TcpState::kSynSent);
  emit(kTcpSyn, iss_);
  arm_retransmit();
}

void TcpEndpoint::accept(Seq remote_isn, bool peer_sack_permitted) {
  sack_enabled_ = profile_->sack && peer_sack_permitted;
  irs_ = remote_isn;
  rcv_nxt_ = remote_isn + 1;
  iss_ = rng_.next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_max_ = snd_nxt_;
  set_state(TcpState::kSynRcvd);
  emit(kTcpSyn | kTcpAck, iss_);
  arm_retransmit();
}

void TcpEndpoint::send(const Bytes& data) {
  if (released_ || fin_pending_ || fin_sent_) return;
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  queued_total_ += data.size();
  push_points_.push_back(queued_total_);  // PSH at the end of this write
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) try_send();
}

void TcpEndpoint::close() {
  if (released_ || fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send();
    send_fin_if_ready();
  } else if (state_ == TcpState::kSynSent) {
    // Nothing exchanged yet; just go away.
    release();
  }
}

void TcpEndpoint::app_exit() {
  app_exited_ = true;
  close();
}

void TcpEndpoint::abort() {
  if (released_) return;
  if (state_ != TcpState::kSynSent && state_ != TcpState::kClosed) send_rst(snd_nxt_);
  reset_connection(false);
}

// ------------------------------------------------------------- wire input

void TcpEndpoint::on_segment(const Segment& s) {
  if (released_) {
    // A closed socket answers anything but RST with RST (RFC 793 p.36).
    if (!s.has(kTcpRst)) send_rst(s.has(kTcpAck) ? s.ack : 0, !s.has(kTcpAck));
    return;
  }
  switch (state_) {
    case TcpState::kSynSent:
      handle_syn_sent(s);
      return;
    case TcpState::kSynRcvd:
      handle_syn_rcvd(s);
      return;
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kCloseWait:
    case TcpState::kClosing:
    case TcpState::kLastAck:
    case TcpState::kTimeWait:
      handle_synchronized(s);
      return;
    case TcpState::kClosed:
    case TcpState::kListen:
      return;  // stack-level states; no segment processing here
  }
}

void TcpEndpoint::handle_syn_sent(const Segment& s) {
  if (s.has(kTcpAck) && s.ack != snd_nxt_) {
    // Unacceptable ACK: RST unless the segment itself is a RST.
    if (!s.has(kTcpRst)) send_rst(s.ack);
    return;
  }
  if (s.has(kTcpRst)) {
    if (s.has(kTcpAck)) {
      ++stats_.rsts_received;
      reset_connection(true);
    }
    return;
  }
  if (s.has(kTcpSyn) && s.has(kTcpAck)) {
    sack_enabled_ = profile_->sack && s.sack_permitted;
    irs_ = s.seq;
    rcv_nxt_ = s.seq + 1;
    snd_una_ = s.ack;
    snd_wnd_ = s.window;
    retransmit_timer_.cancel();
    retries_ = 0;
    set_state(TcpState::kEstablished);
    send_ack();
    if (callbacks_.on_established) callbacks_.on_established();
    try_send();
    send_fin_if_ready();
    return;
  }
  if (s.has(kTcpSyn)) {
    // Simultaneous open (also reachable via the proxy's reflect attack —
    // the TCP Simultaneous Open Attack of Guha & Mukherjee).
    sack_enabled_ = profile_->sack && s.sack_permitted;
    irs_ = s.seq;
    rcv_nxt_ = s.seq + 1;
    set_state(TcpState::kSynRcvd);
    emit(kTcpSyn | kTcpAck, iss_);
    arm_retransmit();
    return;
  }
}

void TcpEndpoint::handle_syn_rcvd(const Segment& s) {
  if (s.has(kTcpRst)) {
    ++stats_.rsts_received;
    reset_connection(true);
    return;
  }
  if (s.has(kTcpSyn) && !s.has(kTcpAck)) {
    // Duplicate SYN: retransmit our SYN+ACK.
    emit(kTcpSyn | kTcpAck, iss_);
    return;
  }
  if (!s.has(kTcpAck)) return;
  if (s.ack != snd_nxt_) {
    send_rst(s.ack);
    return;
  }
  snd_una_ = s.ack;
  snd_wnd_ = s.window;
  retransmit_timer_.cancel();
  retries_ = 0;
  set_state(TcpState::kEstablished);
  if (callbacks_.on_established) callbacks_.on_established();
  if (!s.payload.empty() || s.has(kTcpFin)) {
    handle_synchronized(s);
  } else {
    try_send();
    send_fin_if_ready();
  }
}

bool TcpEndpoint::handle_invalid_flags(const Segment& s) {
  if (flags_are_sensible(s.flags)) return false;
  ++stats_.invalid_flag_segments;
  switch (profile_->invalid_flags) {
    case InvalidFlagPolicy::kIgnore:
      return true;  // drop silently (Linux 3.13 / Windows 95)
    case InvalidFlagPolicy::kRstFirst:
      // Windows 8.1: RST wins regardless of the other flags.
      if (s.has(kTcpRst) && in_window(s.seq, rcv_nxt_, advertised_window())) {
        ++stats_.invalid_flag_responses;
        ++stats_.rsts_received;
        reset_connection(true);
      }
      return true;
    case InvalidFlagPolicy::kBestEffort:
      // Linux 3.0.0: interpret as best it can. A packet with no flags at
      // all gets answered with a duplicate acknowledgment — "a situation
      // that is never valid" — and combos like SYN+FIN are processed
      // bit-by-bit by the regular path below.
      ++stats_.invalid_flag_responses;
      if ((s.flags & 0x3F) == 0) {
        send_ack();
        return true;
      }
      return false;  // fall through to regular processing
  }
  return true;
}

void TcpEndpoint::handle_synchronized(const Segment& s) {
  if (handle_invalid_flags(s)) return;

  std::uint32_t rwnd = advertised_window();
  if (!segment_acceptable(s.seq, s.seq_len(), rcv_nxt_, rwnd)) {
    // Out-of-window segment: RSTs are ignored (this is what forces the
    // off-path Reset attack to sweep the window), everything else gets a
    // re-assertive ACK. A segment lying entirely *below* the window is a
    // duplicate the peer already delivered — that ACK carries the DSACK
    // indication (RFC 2883) so the sender can tell duplication from loss.
    if (!s.has(kTcpRst)) {
      bool entirely_old = s.seq_len() > 0 && seq_leq(s.seq + s.seq_len(), rcv_nxt_);
      SackBlock dup{s.seq, s.seq + s.seq_len()};
      bool with_block = entirely_old && sack_enabled_ && profile_->dsack_blocks;
      send_ack(/*dsack=*/entirely_old, with_block ? &dup : nullptr);
    }
    return;
  }

  if (s.has(kTcpRst)) {
    // In-window RST: connection reset (RFC 793; the "slipping in the
    // window" attack shows any in-window sequence suffices).
    ++stats_.rsts_received;
    reset_connection(true);
    return;
  }

  if (s.has(kTcpSyn)) {
    // In-window SYN on a synchronized connection: reset (the SYN-Reset
    // attack exploits exactly this clause).
    send_rst(snd_nxt_);
    reset_connection(true);
    return;
  }

  if (s.has(kTcpAck)) process_ack(s);
  if (released_) return;  // ack processing may have torn us down
  if (!s.payload.empty()) process_payload(s);
  if (released_) return;
  if (s.has(kTcpFin)) process_fin(s);
}

void TcpEndpoint::process_ack(const Segment& s) {
  std::size_t flight_before = flight_bytes();

  bool saw_dsack_block = false;
  bool sack_advanced = false;
  if (sack_enabled_ && !s.sack_blocks.empty()) absorb_sack(s, saw_dsack_block, sack_advanced);

  if (seq_gt(s.ack, snd_nxt_)) {
    if (seq_leq(s.ack, snd_max_)) {
      // A late ACK for data sent before an RTO rewind: that data did arrive
      // after all — fast-forward past it.
      snd_nxt_ = s.ack;
    } else {
      // Acks data we have never sent: re-assert our state.
      send_ack();
      return;
    }
  }

  if (seq_gt(s.ack, snd_una_)) {
    // New data acknowledged.
    std::uint32_t acked = s.ack - snd_una_;
    std::size_t data_acked = std::min<std::size_t>(acked, send_buf_.size());
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + static_cast<std::ptrdiff_t>(data_acked));
    acked_total_ += data_acked;
    while (!push_points_.empty() && push_points_.front() <= acked_total_)
      push_points_.pop_front();
    snd_una_ = s.ack;
    // Scoreboard ranges at or below the new cumulative ACK are spent.
    if (!sacked_.empty()) {
      auto it = sacked_.begin();
      while (it != sacked_.end() && seq_leq(it->second, snd_una_)) it = sacked_.erase(it);
      if (it != sacked_.end() && seq_lt(it->first, snd_una_)) {
        Seq end = it->second;
        sacked_.erase(it);
        sacked_.emplace(snd_una_, end);
      }
    }
    snd_wnd_ = s.window;
    take_rtt_sample(s.ack);
    retries_ = 0;
    // Forward progress clears any exponential RTO backoff (RFC 6298 §5.7
    // behaviour of real stacks): recompute from the smoothed estimate.
    if (srtt_.has_value()) {
      rto_ = std::clamp(*srtt_ + std::max(rttvar_ * 4, Duration::millis(10)),
                        profile_->min_rto, kMaxRto);
    } else {
      rto_ = std::max(config_.initial_rto, profile_->min_rto);
    }

    if (cc_.in_recovery()) {
      if (seq_geq(s.ack, recover_)) {
        SNAKE_DEBUG << node_.scheduler().now().to_seconds() << "s " << node_.name() << " recovery complete ack=" << s.ack;
        cc_.on_full_ack();
      } else if (seq_geq(s.ack, last_retx_end_)) {
        // NewReno partial ack: plug the next hole — but only one
        // retransmission per hole. Receivers ack every segment, so partial
        // acks arrive for each pipelined segment; re-retransmitting on all
        // of them floods the path with duplicates.
        SNAKE_DEBUG << node_.scheduler().now().to_seconds() << "s " << node_.name()
                    << " partial ack=" << s.ack << " recover=" << recover_;
        cc_.on_partial_ack(acked);
        retransmit_one();
      }
    } else {
      cc_.on_new_ack(acked, flight_before);
    }

    // FIN accounting.
    if (fin_sent_ && seq_gt(snd_una_, fin_seq_)) {
      switch (state_) {
        case TcpState::kFinWait1:
          set_state(TcpState::kFinWait2);
          break;
        case TcpState::kClosing:
          enter_time_wait();
          break;
        case TcpState::kLastAck:
          release();
          return;
        default:
          break;
      }
    }
    arm_retransmit(/*restart=*/true);
    try_send();
    send_fin_if_ready();
    return;
  }

  // Not advancing: duplicate ACK if there is outstanding data (flight
  // includes an unacked FIN's sequence slot) and the segment carries
  // nothing else that explains it.
  snd_wnd_ = s.window;
  if (s.ack == snd_una_ && s.payload.empty() && !s.has(kTcpFin) && flight_before > 0) {
    ++stats_.dup_acks_received;
    // A DSACK indication arrives either as the coarse header bit or as a
    // leading duplicate SACK block (RFC 2883); both mean "duplicate segment,
    // not a hole" to the fast-retransmit counter.
    bool dsack_indicated = s.dsack || saw_dsack_block;
    if (dsack_indicated) ++stats_.dsack_acks_received;
    if (cc_.on_dup_ack(dsack_indicated, flight_before)) {
      recover_ = snd_max_;
      ++stats_.fast_retransmits;
      SNAKE_DEBUG << node_.scheduler().now().to_seconds() << "s " << node_.name() << " fast-retransmit una=" << snd_una_ << " nxt=" << snd_nxt_
                  << " cwnd=" << cc_.cwnd() << " ssthresh=" << cc_.ssthresh();
      retransmit_one();
    } else if (cc_.in_recovery() && sack_advanced) {
      // SACK-driven recovery: each dupack that teaches the scoreboard
      // something new plugs the next hole — this is also why forged SACK
      // blocks are such an effective amplifier (each one buys a
      // retransmission from an honest sender).
      retransmit_next_hole();
    }
    try_send();  // recovery inflation may open the window
  }
}

void TcpEndpoint::process_payload(const Segment& s) {
  // A client whose application already exited answers data with RST on
  // Linux-like profiles (see profile.rst_data_after_fin). If those RSTs are
  // blocked by an attacker, the sending server wedges in CLOSE_WAIT — the
  // paper's CLOSE_WAIT Resource Exhaustion attack.
  if (app_exited_ && profile_->rst_data_after_fin) {
    send_rst(snd_nxt_);
    reset_connection(false);
    return;
  }

  Seq seg_end = s.seq + static_cast<std::uint32_t>(s.payload.size());
  if (seq_leq(seg_end, rcv_nxt_)) {
    // Entirely duplicate data: acknowledge with a DSACK indication so the
    // sender can tell duplication from loss (RFC 2883). A dsack_blocks
    // profile additionally reports the duplicate range as the leading SACK
    // block.
    SackBlock dup{s.seq, seg_end};
    bool with_block = sack_enabled_ && profile_->dsack_blocks;
    send_ack(/*dsack=*/true, with_block ? &dup : nullptr);
    return;
  }
  if (seq_gt(s.seq, rcv_nxt_)) {
    // Out of order: buffer (bounded by the receive buffer) and send a
    // duplicate ACK pointing at the hole. A reneging profile makes room by
    // discarding already-buffered (and already-SACKed!) data furthest from
    // the hole — RFC 2018 permits this, and it is exactly what breaks a
    // sender that trusts its scoreboard unconditionally.
    if (profile_->sack_renege && s.payload.size() <= config_.recv_buffer) {
      while (!out_of_order_.empty() &&
             out_of_order_bytes_ + s.payload.size() > config_.recv_buffer) {
        auto last = std::prev(out_of_order_.end());
        out_of_order_bytes_ -= last->second.size();
        ++stats_.sack_reneges;
        out_of_order_.erase(last);
      }
    }
    if (out_of_order_bytes_ + s.payload.size() <= config_.recv_buffer &&
        !out_of_order_.contains(s.seq)) {
      out_of_order_bytes_ += s.payload.size();
      out_of_order_[s.seq] = s.payload;
      last_ooo_start_ = s.seq;
      ++stats_.ooo_buffered;
    } else {
      ++stats_.ooo_discarded;
    }
    send_ack();
    return;
  }

  // In order (trimming any already-received prefix). The exact-fit case —
  // nearly every data segment of a healthy transfer — delivers the parsed
  // payload as-is instead of re-copying ~MSS per packet.
  std::size_t skip = rcv_nxt_ - s.seq;
  if (skip == 0) {
    rcv_nxt_ += static_cast<std::uint32_t>(s.payload.size());
    stats_.bytes_delivered += s.payload.size();
    if (callbacks_.on_data) callbacks_.on_data(s.payload);
  } else {
    Bytes fresh(s.payload.begin() + static_cast<std::ptrdiff_t>(skip), s.payload.end());
    rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
    stats_.bytes_delivered += fresh.size();
    if (callbacks_.on_data) callbacks_.on_data(fresh);
  }

  // Drain now-contiguous buffered segments.
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end()) {
    if (seq_gt(it->first, rcv_nxt_)) break;
    Seq end = it->first + static_cast<std::uint32_t>(it->second.size());
    if (seq_gt(end, rcv_nxt_)) {
      std::size_t offset = rcv_nxt_ - it->first;
      Bytes chunk(it->second.begin() + static_cast<std::ptrdiff_t>(offset), it->second.end());
      rcv_nxt_ = end;
      stats_.bytes_delivered += chunk.size();
      if (callbacks_.on_data) callbacks_.on_data(chunk);
    }
    out_of_order_bytes_ -= it->second.size();
    it = out_of_order_.erase(it);
  }
  if (out_of_order_.empty()) last_ooo_start_.reset();
  send_ack();
}

void TcpEndpoint::process_fin(const Segment& s) {
  Seq fin_at = s.seq + static_cast<std::uint32_t>(s.payload.size());
  if (fin_at != rcv_nxt_) {
    // FIN beyond a hole: the ACK we already sent covers it; wait for
    // retransmission.
    return;
  }
  if (remote_fin_seen_) {
    send_ack();  // retransmitted FIN
    return;
  }
  remote_fin_seen_ = true;
  rcv_nxt_ += 1;
  send_ack();
  switch (state_) {
    case TcpState::kEstablished:
      set_state(TcpState::kCloseWait);
      if (callbacks_.on_remote_close) callbacks_.on_remote_close();
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked (else we would be in FIN_WAIT_2).
      set_state(TcpState::kClosing);
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------- output

void TcpEndpoint::emit(std::uint8_t flags, Seq seq, Bytes payload, bool dsack,
                       const SackBlock* dsack_block) {
  Segment s;
  s.src_port = config_.local_port;
  s.dst_port = config_.remote_port;
  s.seq = seq;
  s.flags = flags;
  s.dsack = dsack;
  if (flags & kTcpAck) s.ack = rcv_nxt_;
  if (flags & kTcpSyn) {
    s.sack_permitted = profile_->sack;  // RFC 2018 §2 negotiation
  } else if (sack_enabled_ && (flags & kTcpAck) && !(flags & kTcpRst)) {
    s.sack_blocks = receiver_sack_blocks(dsack_block);
    stats_.sack_blocks_sent += s.sack_blocks.size();
  }
  s.window = advertised_window();
  stats_.bytes_sent_wire += payload.size();
  s.payload = std::move(payload);

  sim::Packet p;
  p.dst = config_.remote_addr;
  p.protocol = sim::kProtoTcp;
  p.bytes = node_.scheduler().buffer_pool().acquire();
  serialize_into(s, p.bytes);
  ++stats_.segments_sent;
  SNAKE_TRACE << node_.name() << " tcp tx " << s.summary();
  node_.send_packet(std::move(p));
}

void TcpEndpoint::send_ack(bool dsack, const SackBlock* dsack_block) {
  if (dsack) ++stats_.dsack_acks_sent;
  emit(kTcpAck, snd_nxt_, {}, dsack, dsack_block);
}

std::vector<SackBlock> TcpEndpoint::receiver_sack_blocks(const SackBlock* dsack_block) const {
  std::vector<SackBlock> ranges;
  for (const auto& [seq, data] : out_of_order_) {
    Seq end = seq + static_cast<std::uint32_t>(data.size());
    if (!ranges.empty() && seq_leq(seq, ranges.back().end)) {
      if (seq_gt(end, ranges.back().end)) ranges.back().end = end;
    } else {
      ranges.push_back({seq, end});
    }
  }
  // The range containing the most recent arrival goes first (RFC 2018 §4).
  if (last_ooo_start_.has_value()) {
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      if (seq_leq(ranges[i].start, *last_ooo_start_) &&
          seq_lt(*last_ooo_start_, ranges[i].end)) {
        std::rotate(ranges.begin(), ranges.begin() + static_cast<std::ptrdiff_t>(i),
                    ranges.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        break;
      }
    }
  }
  if (dsack_block != nullptr) ranges.insert(ranges.begin(), *dsack_block);
  if (ranges.size() > Segment::kMaxSackBlocks) ranges.resize(Segment::kMaxSackBlocks);
  return ranges;
}

void TcpEndpoint::absorb_sack(const Segment& s, bool& saw_dsack, bool& advanced) {
  auto covered = [this] {
    std::uint64_t n = 0;
    for (const auto& [start, end] : sacked_) n += static_cast<std::uint32_t>(end - start);
    return n;
  };
  std::uint64_t before = covered();
  std::uint32_t span = snd_max_ - snd_una_;
  for (const SackBlock& raw : s.sack_blocks) {
    ++stats_.sack_blocks_received;
    // A block at or below the cumulative ACK is a DSACK duplicate report.
    if (seq_leq(raw.end, s.ack)) {
      saw_dsack = true;
      continue;
    }
    Seq start = seq_lt(raw.start, snd_una_) ? snd_una_ : raw.start;
    std::uint32_t off_start = start - snd_una_;
    std::uint32_t off_end = raw.end - snd_una_;
    // Reject empty, inverted, or never-sent ranges: a receiver cannot have
    // seen data beyond snd_max_, so such blocks are forged (or stale) and
    // must not poison the scoreboard.
    if (off_end <= off_start || off_end > span) continue;
    Seq merge_start = start;
    Seq merge_end = raw.end;
    auto it = sacked_.begin();
    while (it != sacked_.end()) {
      if (seq_lt(it->second, merge_start)) {
        ++it;
        continue;
      }
      if (seq_gt(it->first, merge_end)) break;
      // Overlapping or adjacent: coalesce.
      if (seq_lt(it->first, merge_start)) merge_start = it->first;
      if (seq_gt(it->second, merge_end)) merge_end = it->second;
      it = sacked_.erase(it);
    }
    sacked_.emplace(merge_start, merge_end);
  }
  advanced = covered() > before;
}

void TcpEndpoint::retransmit_next_hole() {
  if (send_buf_.empty()) return;
  Seq at = seq_lt(sack_retx_next_, snd_una_) ? snd_una_ : sack_retx_next_;
  Seq hole_end = snd_nxt_;
  for (const auto& [start, end] : sacked_) {
    if (seq_leq(start, at) && seq_lt(at, end)) {
      at = end;  // inside a SACKed range: the hole starts after it
      hole_end = snd_nxt_;
      continue;
    }
    if (seq_gt(start, at)) {
      hole_end = start;
      break;
    }
  }
  if (seq_geq(at, snd_nxt_)) return;  // everything outstanding is SACKed
  std::uint32_t offset = at - snd_una_;
  if (offset >= send_buf_.size()) return;
  std::size_t len = std::min({config_.mss, static_cast<std::size_t>(hole_end - at),
                              send_buf_.size() - offset});
  if (len == 0) return;
  Bytes chunk(send_buf_.begin() + static_cast<std::ptrdiff_t>(offset),
              send_buf_.begin() + static_cast<std::ptrdiff_t>(offset + len));
  ++stats_.retransmissions;
  ++stats_.sack_retransmits;
  timed_seq_.reset();
  std::uint64_t start_off = acked_total_ + offset;
  emit(covers_push_point(start_off, start_off + len) ? (kTcpPsh | kTcpAck) : kTcpAck, at,
       std::move(chunk));
  sack_retx_next_ = at + static_cast<std::uint32_t>(len);
}

void TcpEndpoint::send_rst(Seq seq, bool with_ack) {
  ++stats_.rsts_sent;
  emit(with_ack ? (kTcpRst | kTcpAck) : kTcpRst, seq);
}

bool TcpEndpoint::covers_push_point(std::uint64_t start_offset,
                                    std::uint64_t end_offset) const {
  for (std::uint64_t p : push_points_) {
    if (p > end_offset) break;  // sorted ascending
    if (p > start_offset) return true;
  }
  return false;
}

std::uint16_t TcpEndpoint::advertised_window() const {
  std::size_t free_bytes =
      config_.recv_buffer > out_of_order_bytes_ ? config_.recv_buffer - out_of_order_bytes_ : 0;
  return static_cast<std::uint16_t>(std::min<std::size_t>(free_bytes, 65535));
}

void TcpEndpoint::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing)
    return;
  if (cc_.in_recovery()) return;  // conservative NewReno: retransmissions only
  std::size_t window = std::min<std::size_t>(cc_.cwnd(), snd_wnd_);
  while (unsent_bytes() > 0 && flight_bytes() < window) {
    std::size_t can_send = std::min({unsent_bytes(), config_.mss, window - flight_bytes()});
    if (can_send == 0) break;
    // Sender-side silly window avoidance (RFC 1122 §4.2.3.4 / Nagle): don't
    // shred the stream into tiny segments while data is outstanding — wait
    // for the window to open a full MSS or for everything to be acked.
    if (can_send < config_.mss && flight_bytes() > 0 && unsent_bytes() > can_send) break;
    std::size_t offset = snd_nxt_ - snd_una_;
    Bytes chunk(send_buf_.begin() + static_cast<std::ptrdiff_t>(offset),
                send_buf_.begin() + static_cast<std::ptrdiff_t>(offset + can_send));
    start_rtt_sample(snd_nxt_ + static_cast<std::uint32_t>(can_send));
    // PSH marks the end of an application write (real stacks do the same),
    // so bulk data is mostly plain ACK segments and PSH+ACK "occur[s] only
    // occasionally in the data stream" as the paper observes.
    std::uint64_t start = acked_total_ + offset;
    bool boundary = covers_push_point(start, start + can_send);
    emit(boundary ? (kTcpPsh | kTcpAck) : kTcpAck, snd_nxt_, std::move(chunk));
    snd_nxt_ += static_cast<std::uint32_t>(can_send);
    if (seq_gt(snd_nxt_, snd_max_)) snd_max_ = snd_nxt_;
  }
  arm_retransmit();
}

void TcpEndpoint::send_fin_if_ready() {
  if (!fin_pending_ || fin_sent_ || unsent_bytes() > 0) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  fin_seq_ = snd_nxt_;
  emit(kTcpFin | kTcpAck, snd_nxt_);
  snd_nxt_ += 1;
  if (seq_gt(snd_nxt_, snd_max_)) snd_max_ = snd_nxt_;
  fin_sent_ = true;
  set_state(state_ == TcpState::kEstablished ? TcpState::kFinWait1 : TcpState::kLastAck);
  arm_retransmit();
}

// ------------------------------------------------------- timers & samples

void TcpEndpoint::arm_retransmit(bool restart) {
  bool outstanding = flight_bytes() > 0 || state_ == TcpState::kSynSent ||
                     state_ == TcpState::kSynRcvd ||
                     (unsent_bytes() > 0 && snd_wnd_ == 0);  // zero-window probe duty
  if (!outstanding) {
    retransmit_timer_.cancel();
    return;
  }
  TimePoint deadline = node_.scheduler().now() + rto_;
  if (retransmit_timer_.pending()) {
    if (!restart) return;
    // Lazy restart: pushing the deadline out just records it — the pending
    // event re-sleeps when it fires. Only an earlier deadline (an RTT sample
    // shrank rto_) forces a real cancel + reschedule.
    if (deadline >= rtx_fire_at_) {
      rtx_deadline_ = deadline;
      return;
    }
    retransmit_timer_.cancel();
  }
  rtx_deadline_ = deadline;
  rtx_fire_at_ = deadline;
  retransmit_timer_ = node_.scheduler().schedule_in(rto_, [this] { on_retransmit_timeout(); });
}

void TcpEndpoint::on_retransmit_timeout() {
  if (released_) return;
  TimePoint now = node_.scheduler().now();
  if (now < rtx_deadline_) {
    // The clock was lazily restarted since this event was scheduled: not a
    // timeout, just sleep the rest of the way to the logical deadline.
    rtx_fire_at_ = rtx_deadline_;
    retransmit_timer_ = node_.scheduler().schedule_in(rtx_deadline_ - now,
                                                      [this] { on_retransmit_timeout(); });
    return;
  }
  ++retries_;
  ++stats_.timeouts;
  rto_ = std::min(rto_ * 2, kMaxRto);  // backoff applies to everything below
  SNAKE_DEBUG << node_.scheduler().now().to_seconds() << "s " << node_.name() << " RTO #" << retries_ << " state=" << to_string(state_)
              << " una=" << snd_una_ << " nxt=" << snd_nxt_ << " rto=" << rto_.to_seconds();
  if (retries_ > profile_->max_retries) {
    // Give up — Linux's tcp_retries2 behaviour; this is what eventually
    // (after "13 to 30 minutes") releases a wedged CLOSE_WAIT socket.
    SNAKE_DEBUG << node_.name() << " tcp give-up after " << retries_ << " retries in state "
                << to_string(state_);
    reset_connection(true);
    return;
  }
  timed_seq_.reset();  // Karn: never sample a retransmitted segment
  switch (state_) {
    case TcpState::kSynSent:
      emit(kTcpSyn, iss_);
      break;
    case TcpState::kSynRcvd:
      emit(kTcpSyn | kTcpAck, iss_);
      break;
    default:
      if (flight_bytes() > 0 || (fin_sent_ && seq_leq(snd_una_, fin_seq_))) {
        // RFC 2018 §8: after an RTO the sender must assume the receiver
        // reneged — throw the scoreboard away and go-back-N.
        sacked_.clear();
        cc_.on_rto(flight_bytes());
        // Go-back-N: everything past snd_una is presumed lost; rewind and
        // let slow start resend it (what real stacks do by marking the
        // whole outstanding window lost on RTO).
        snd_nxt_ = snd_una_;
        if (fin_sent_) {
          fin_sent_ = false;
          fin_pending_ = true;
        }
        ++stats_.retransmissions;
        timed_seq_.reset();
        try_send();
        send_fin_if_ready();
      } else if (unsent_bytes() > 0 && snd_wnd_ == 0) {
        // Zero-window probe: one byte past the edge.
        std::size_t offset = snd_nxt_ - snd_una_;
        Bytes probe = {send_buf_[offset]};
        emit(kTcpPsh | kTcpAck, snd_nxt_, std::move(probe));
        snd_nxt_ += 1;
        if (seq_gt(snd_nxt_, snd_max_)) snd_max_ = snd_nxt_;
      }
      break;
  }
  // Single re-arm point: the paths above may already have armed the timer
  // via try_send/send_fin_if_ready; restart so exactly one timer is live
  // (a second, orphaned handle could never be cancelled by later ACKs).
  arm_retransmit(/*restart=*/true);
}

void TcpEndpoint::retransmit_one() {
  std::size_t in_buf = send_buf_.size();
  if (in_buf > 0) {
    std::size_t len = std::min(config_.mss, in_buf);
    // With a scoreboard, the first hole ends where the first SACKed range
    // begins — no point retransmitting bytes the receiver already holds.
    if (sack_enabled_ && !sacked_.empty()) {
      std::uint32_t hole = sacked_.begin()->first - snd_una_;
      if (hole > 0) len = std::min<std::size_t>(len, hole);
    }
    Bytes chunk(send_buf_.begin(), send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    ++stats_.retransmissions;
    timed_seq_.reset();
    last_retx_end_ = snd_una_ + static_cast<std::uint32_t>(len);
    if (sack_enabled_) sack_retx_next_ = last_retx_end_;
    emit(covers_push_point(acked_total_, acked_total_ + len) ? (kTcpPsh | kTcpAck) : kTcpAck,
         snd_una_, std::move(chunk));
  } else if (fin_sent_ && seq_leq(snd_una_, fin_seq_)) {
    ++stats_.retransmissions;
    last_retx_end_ = fin_seq_ + 1;
    emit(kTcpFin | kTcpAck, fin_seq_);
  }
}

void TcpEndpoint::start_rtt_sample(Seq seq_end) {
  if (timed_seq_.has_value()) return;
  timed_seq_ = seq_end;
  timed_at_ = node_.scheduler().now();
}

void TcpEndpoint::take_rtt_sample(Seq acked_to) {
  if (!timed_seq_.has_value() || seq_lt(acked_to, *timed_seq_)) return;
  Duration sample = node_.scheduler().now() - timed_at_;
  timed_seq_.reset();
  if (!srtt_.has_value()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    Duration diff = *srtt_ > sample ? *srtt_ - sample : sample - *srtt_;
    rttvar_ = (rttvar_ * 3 + diff) / 4;
    srtt_ = (*srtt_ * 7 + sample) / 8;
  }
  Duration candidate = *srtt_ + std::max(rttvar_ * 4, Duration::millis(10));
  rto_ = std::clamp(candidate, profile_->min_rto, kMaxRto);
}

void TcpEndpoint::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  retransmit_timer_.cancel();
  // Lazy: expiry only releases the socket — no packet, nothing a detector
  // reads — so a deterministic early-exit may leave it unfired.
  time_wait_timer_ =
      node_.scheduler().schedule_lazy_in(config_.time_wait, [this] { release(); });
}

void TcpEndpoint::set_state(TcpState next) {
  if (state_ == next) return;
  SNAKE_TRACE << node_.name() << " tcp " << to_string(state_) << " -> " << to_string(next);
  state_ = next;
}

void TcpEndpoint::release() {
  if (released_) return;
  released_ = true;
  retransmit_timer_.cancel();
  time_wait_timer_.cancel();
  set_state(TcpState::kClosed);
  if (callbacks_.on_closed) callbacks_.on_closed();
  if (on_released_) on_released_();
}

void TcpEndpoint::reset_connection(bool notify) {
  retransmit_timer_.cancel();
  time_wait_timer_.cancel();
  set_state(TcpState::kClosed);
  if (notify && callbacks_.on_reset) callbacks_.on_reset();
  release();
}

TcpEndpoint::Snapshot TcpEndpoint::capture_state() const {
  Snapshot s;
  s.rng = rng_;
  s.state = state_;
  s.released = released_;
  s.iss = iss_;
  s.snd_una = snd_una_;
  s.snd_nxt = snd_nxt_;
  s.snd_max = snd_max_;
  s.snd_wnd = snd_wnd_;
  s.send_buf = send_buf_;
  s.queued_total = queued_total_;
  s.acked_total = acked_total_;
  s.push_points = push_points_;
  s.fin_pending = fin_pending_;
  s.fin_sent = fin_sent_;
  s.fin_seq = fin_seq_;
  s.app_exited = app_exited_;
  s.irs = irs_;
  s.rcv_nxt = rcv_nxt_;
  s.out_of_order = out_of_order_;
  s.out_of_order_bytes = out_of_order_bytes_;
  s.remote_fin_seen = remote_fin_seen_;
  s.sack_enabled = sack_enabled_;
  s.sacked = sacked_;
  s.sack_retx_next = sack_retx_next_;
  s.last_ooo_start = last_ooo_start_;
  s.cc = cc_;
  s.recover = recover_;
  s.last_retx_end = last_retx_end_;
  s.srtt = srtt_;
  s.rttvar = rttvar_;
  s.rto = rto_;
  s.timed_seq = timed_seq_;
  s.timed_at = timed_at_;
  s.retransmit_timer = retransmit_timer_;
  s.time_wait_timer = time_wait_timer_;
  s.rtx_deadline = rtx_deadline_;
  s.rtx_fire_at = rtx_fire_at_;
  s.retries = retries_;
  s.stats = stats_;
  return s;
}

void TcpEndpoint::restore_state(const Snapshot& snap) {
  rng_ = snap.rng;
  state_ = snap.state;
  released_ = snap.released;
  iss_ = snap.iss;
  snd_una_ = snap.snd_una;
  snd_nxt_ = snap.snd_nxt;
  snd_max_ = snap.snd_max;
  snd_wnd_ = snap.snd_wnd;
  send_buf_ = snap.send_buf;
  queued_total_ = snap.queued_total;
  acked_total_ = snap.acked_total;
  push_points_ = snap.push_points;
  fin_pending_ = snap.fin_pending;
  fin_sent_ = snap.fin_sent;
  fin_seq_ = snap.fin_seq;
  app_exited_ = snap.app_exited;
  irs_ = snap.irs;
  rcv_nxt_ = snap.rcv_nxt;
  out_of_order_ = snap.out_of_order;
  out_of_order_bytes_ = snap.out_of_order_bytes;
  remote_fin_seen_ = snap.remote_fin_seen;
  sack_enabled_ = snap.sack_enabled;
  sacked_ = snap.sacked;
  sack_retx_next_ = snap.sack_retx_next;
  last_ooo_start_ = snap.last_ooo_start;
  cc_ = *snap.cc;
  recover_ = snap.recover;
  last_retx_end_ = snap.last_retx_end;
  srtt_ = snap.srtt;
  rttvar_ = snap.rttvar;
  rto_ = snap.rto;
  timed_seq_ = snap.timed_seq;
  timed_at_ = snap.timed_at;
  retransmit_timer_ = snap.retransmit_timer;
  time_wait_timer_ = snap.time_wait_timer;
  rtx_deadline_ = snap.rtx_deadline;
  rtx_fire_at_ = snap.rtx_fire_at;
  retries_ = snap.retries;
  stats_ = snap.stats;
}

void TcpEndpoint::snapshot_zombify() {
  released_ = true;
  state_ = TcpState::kClosed;
  retransmit_timer_ = sim::Timer();
  time_wait_timer_ = sim::Timer();
}

}  // namespace snake::tcp
