#include "tcp/congestion.h"

#include <algorithm>
#include <limits>

namespace snake::tcp {

CongestionControl::CongestionControl(std::size_t mss, const TcpProfile& profile)
    : mss_(mss),
      profile_(&profile),
      cwnd_(mss * profile.initial_cwnd_segments),
      ssthresh_(profile.initial_ssthresh) {}

void CongestionControl::grow(std::size_t acked, std::size_t flight_before) {
  if (profile_->naive_cwnd_per_ack) {
    // The misbehaving-receiver-vulnerable stack (Savage et al.): a full MSS
    // of growth for EVERY acknowledgment received — duplicates included, no
    // outstanding-data check, no congestion-avoidance damping. Growth is
    // proportional to the acknowledgment rate, which the receiver controls.
    cwnd_ = std::min(cwnd_ + mss_, profile_->max_cwnd);
    return;
  }
  // RFC 5681: only grow when the window is actually being used.
  if (flight_before + acked < cwnd_) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += std::min(acked == 0 ? mss_ : acked, mss_);  // slow start
  } else {
    cwnd_ += std::max<std::size_t>(1, mss_ * mss_ / cwnd_);  // congestion avoidance
  }
  cwnd_ = std::min(cwnd_, profile_->max_cwnd);
}

void CongestionControl::on_new_ack(std::size_t acked, std::size_t flight_before) {
  dup_acks_ = 0;
  if (in_recovery_) return;  // endpoint routes recovery acks to partial/full
  grow(acked, flight_before);
}

bool CongestionControl::on_dup_ack(bool dsack, std::size_t flight_before) {
  if (profile_->naive_cwnd_per_ack) {
    // The misbehaving-receiver-vulnerable stack: every ACK grows the window.
    grow(0, flight_before);
  }
  if (dsack && profile_->dsack_dupack_suppression) {
    // The receiver told us this ACK was caused by a duplicate segment, not a
    // hole — do not treat it as a loss indication (RFC 2883 §4).
    return false;
  }
  if (!profile_->fast_retransmit) return false;  // dupacks are not a loss signal
  if (in_recovery_) {
    // Conservative recovery: without SACK, transmitting new data on an
    // inflated window plants fresh holes that only an RTO can repair (the
    // endpoint also refuses to send new data while recovering).
    return false;
  }
  if (++dup_acks_ < kDupAckThreshold) return false;
  // Enter fast recovery.
  std::size_t flight = flight_before;
  ssthresh_ = std::max(flight / 2, 2 * mss_);
  cwnd_ = ssthresh_ + 3 * mss_;
  in_recovery_ = true;
  return true;
}

void CongestionControl::on_partial_ack(std::size_t acked) {
  // Deflate by the amount acked (but keep at least one segment), then allow
  // one more retransmission — handled by the endpoint.
  cwnd_ = cwnd_ > acked ? cwnd_ - acked : mss_;
  cwnd_ = std::max(cwnd_, mss_);
  cwnd_ += mss_;
}

void CongestionControl::on_full_ack() {
  in_recovery_ = false;
  dup_acks_ = 0;
  cwnd_ = std::max(ssthresh_, mss_);
}

void CongestionControl::on_rto(std::size_t flight) {
  ssthresh_ = std::max(flight / 2, 2 * mss_);
  cwnd_ = mss_;
  dup_acks_ = 0;
  in_recovery_ = false;
}

}  // namespace snake::tcp
