// Per-node TCP "network stack": owns the endpoints, demuxes incoming
// segments by 4-tuple, accepts connections on listening ports, and exposes
// the netstat-style socket table SNAKE's resource-exhaustion detector
// queries ("the executor ... queries the OS to determine the number of
// connections maintained by the server, for example by using the netstat
// command").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/node.h"
#include "tcp/endpoint.h"
#include "tcp/profile.h"
#include "util/rng.h"

namespace snake::tcp {

class TcpStack {
 public:
  TcpStack(sim::Node& node, const TcpProfile& profile, snake::Rng rng);

  /// Returns the stack to its just-constructed state for scenario-arena
  /// reuse: drops all endpoints/listeners/connections, restores the
  /// ephemeral port counter, swaps in the trial's profile and forked RNG,
  /// and re-registers the protocol handler (Node::reset cleared it).
  void reset(const TcpProfile& profile, snake::Rng rng);

  /// Active open. Returns the endpoint (owned by the stack; valid for the
  /// stack's lifetime). The connection starts immediately.
  TcpEndpoint& connect(sim::Address remote, std::uint16_t remote_port, TcpCallbacks callbacks);

  /// Active open with explicit endpoint tuning (MSS, receive buffer,
  /// timers). The stack still assigns the connection 4-tuple — the addr and
  /// port members of `config` are overwritten.
  TcpEndpoint& connect(sim::Address remote, std::uint16_t remote_port, TcpCallbacks callbacks,
                       TcpEndpointConfig config);

  /// Passive open: `on_accept` is invoked with each new connection's
  /// endpoint and must return the application callbacks for it.
  using AcceptHandler = std::function<TcpCallbacks(TcpEndpoint&)>;
  void listen(std::uint16_t port, AcceptHandler on_accept);

  /// netstat: sockets currently held by the stack (excluding listeners).
  /// `include_time_wait` controls whether TIME_WAIT sockets count — the
  /// detector ignores them since they are part of normal teardown.
  std::size_t open_sockets(bool include_time_wait = false) const;

  /// Socket counts per state name, for reports.
  std::map<std::string, int> socket_states() const;

  const std::vector<std::unique_ptr<TcpEndpoint>>& endpoints() const { return endpoints_; }
  const TcpProfile& profile() const { return *profile_; }
  sim::Node& node() { return node_; }

 private:
  struct ConnKey {
    sim::Address remote_addr;
    std::uint16_t remote_port;
    std::uint16_t local_port;
    auto operator<=>(const ConnKey&) const = default;
  };

 public:
  /// Frozen stack state for the snapshot layer: RNG, port counter, the value
  /// state of the first N endpoints, and the demux table as (key, endpoint
  /// index) pairs. Listeners are wired once per session and not captured.
  struct Snapshot {
    snake::Rng rng{0};
    std::uint16_t next_ephemeral_port = 40000;
    std::vector<TcpEndpoint::Snapshot> endpoints;
    std::vector<std::pair<ConnKey, std::uint32_t>> connections;
  };

  Snapshot capture() const;

  /// Destroys endpoints beyond `keep` (objects created after every snapshot
  /// of interest, during a previous forked run). Must be called BEFORE
  /// Scheduler::restore so their destructors cancel timers against the
  /// scheduler state those handles actually refer to.
  void truncate_endpoints(std::size_t keep);

  /// Restores a capture() onto the session graph. Endpoints beyond the
  /// snapshot's count are zombified in place (see
  /// TcpEndpoint::snapshot_zombify) — later snapshots may still reference
  /// them, so they cannot be destroyed. Call AFTER Scheduler::restore.
  void restore(const Snapshot& snap);

 private:

  void on_packet(const sim::Packet& packet);
  TcpEndpoint& create_endpoint(TcpEndpointConfig config, TcpCallbacks callbacks);

  sim::Node& node_;
  const TcpProfile* profile_;
  snake::Rng rng_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  std::map<ConnKey, TcpEndpoint*> connections_;
  std::vector<std::unique_ptr<TcpEndpoint>> endpoints_;
  std::uint16_t next_ephemeral_port_ = 40000;
};

}  // namespace snake::tcp
