// One TCP connection endpoint: the full RFC 793 connection machine with
// reliability (RTO + fast retransmit), New Reno congestion control, flow
// control, and teardown — including the profile-specific behaviours the
// paper's attacks exploit (see tcp/profile.h).
//
// Endpoints live inside a TcpStack (tcp/stack.h), which owns demux and the
// "netstat" view the resource-exhaustion detector queries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "sim/node.h"
#include "tcp/congestion.h"
#include "tcp/profile.h"
#include "tcp/segment.h"
#include "tcp/seq.h"
#include "util/rng.h"
#include "util/time.h"

namespace snake::tcp {

enum class TcpState {
  kClosed,
  kListen,  // only used by the stack's listener bookkeeping
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

/// Names match the dot state machine in statemachine/protocol_specs.cpp.
const char* to_string(TcpState state);

/// Application-facing callbacks. All optional.
struct TcpCallbacks {
  std::function<void()> on_established;
  std::function<void(const Bytes&)> on_data;
  std::function<void()> on_remote_close;  ///< peer FIN processed
  std::function<void()> on_reset;         ///< connection aborted (RST or give-up)
  std::function<void()> on_closed;        ///< socket fully released
};

/// Counters exposed for tests, detection, and the experiment reports.
struct TcpEndpointStats {
  std::uint64_t bytes_sent_wire = 0;        ///< payload bytes put on the wire
  std::uint64_t bytes_delivered = 0;        ///< in-order payload handed to the app
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_received = 0;
  std::uint64_t dsack_acks_received = 0;  ///< dupacks carrying a DSACK indication
  std::uint64_t dsack_acks_sent = 0;       ///< acks we sent flagged DSACK
  std::uint64_t rsts_sent = 0;
  std::uint64_t rsts_received = 0;
  std::uint64_t invalid_flag_segments = 0;  ///< nonsensical flag combos seen
  std::uint64_t invalid_flag_responses = 0; ///< ...that we answered (fingerprint!)
  std::uint64_t ooo_buffered = 0;           ///< out-of-order segments buffered
  std::uint64_t ooo_discarded = 0;          ///< out-of-order segments discarded (buffer full)
  std::uint64_t sack_blocks_sent = 0;       ///< SACK blocks emitted in ACK options
  std::uint64_t sack_blocks_received = 0;   ///< SACK blocks seen by the sender side
  std::uint64_t sack_retransmits = 0;       ///< hole retransmits driven by the scoreboard
  std::uint64_t sack_reneges = 0;           ///< SACKed ranges later discarded (renege profile)
};

struct TcpEndpointConfig {
  sim::Address remote_addr = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  std::size_t mss = 1400;
  std::size_t recv_buffer = 65535;
  Duration time_wait = Duration::seconds(60.0);  // 2*MSL
  Duration initial_rto = Duration::seconds(1.0);
};

class TcpEndpoint {
 public:
  /// `on_released` lets the owning stack learn when the socket leaves the
  /// "netstat" table.
  TcpEndpoint(sim::Node& node, const TcpProfile& profile, TcpEndpointConfig config,
              TcpCallbacks callbacks, snake::Rng rng, std::function<void()> on_released);
  ~TcpEndpoint();
  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  // ---- Application API -----------------------------------------------
  /// Installs/replaces the application callbacks (used by the stack's
  /// accept path, which must construct the endpoint before the application
  /// can see it).
  void set_callbacks(TcpCallbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Active open (client). Sends SYN.
  void connect();

  /// Passive open (server side); called by the stack on an incoming SYN.
  /// `peer_sack_permitted` reflects the SYN's kind-4 option (RFC 2018 §2).
  void accept(Seq remote_isn, bool peer_sack_permitted = false);

  /// Queues application data for transmission.
  void send(const Bytes& data);

  /// Graceful close: FIN after queued data drains.
  void close();

  /// The application process exits abruptly mid-connection (e.g. the paper's
  /// wget client terminating during an HTTP download). Sends FIN like a
  /// normal close, but — on profiles with rst_data_after_fin — any data
  /// arriving afterwards is answered with RST instead of an ACK. Blocking
  /// those RSTs is the CLOSE_WAIT Resource Exhaustion attack.
  void app_exit();

  /// Hard abort: RST now, socket released.
  void abort();

  // ---- Wire input (from the stack demux) ------------------------------
  void on_segment(const Segment& segment);

  // ---- Snapshot support ------------------------------------------------
  /// Every mutable per-connection member, frozen by value. Identity members
  /// (node_, profile_, config_, callbacks_, on_released_) are session-stable
  /// and excluded — a restore writes into the same endpoint object whose
  /// callbacks were wired at creation. Timer handles are captured verbatim;
  /// they stay valid because the scheduler snapshot preserves slot indices
  /// and generations. Keep this struct and capture/restore in lockstep with
  /// the member list below.
  struct Snapshot {
    snake::Rng rng{0};
    TcpState state = TcpState::kClosed;
    bool released = false;
    Seq iss = 0, snd_una = 0, snd_nxt = 0, snd_max = 0;
    std::uint32_t snd_wnd = 0;
    std::deque<std::uint8_t> send_buf;
    std::uint64_t queued_total = 0, acked_total = 0;
    std::deque<std::uint64_t> push_points;
    bool fin_pending = false, fin_sent = false;
    Seq fin_seq = 0;
    bool app_exited = false;
    Seq irs = 0, rcv_nxt = 0;
    std::map<Seq, Bytes, SeqCircularLess> out_of_order;
    std::size_t out_of_order_bytes = 0;
    bool remote_fin_seen = false;
    bool sack_enabled = false;
    std::map<Seq, Seq, SeqCircularLess> sacked;
    Seq sack_retx_next = 0;
    std::optional<Seq> last_ooo_start;
    std::optional<CongestionControl> cc;  ///< optional only for default-constructibility
    Seq recover = 0, last_retx_end = 0;
    std::optional<Duration> srtt;
    Duration rttvar = Duration::zero();
    Duration rto = Duration::zero();
    std::optional<Seq> timed_seq;
    TimePoint timed_at;
    sim::Timer retransmit_timer, time_wait_timer;
    TimePoint rtx_deadline, rtx_fire_at;
    int retries = 0;
    TcpEndpointStats stats;
  };

  Snapshot capture_state() const;
  void restore_state(const Snapshot& snap);

  /// Marks the endpoint dead without cancelling timers or firing callbacks.
  /// Used when restoring an earlier snapshot on a graph that has since grown:
  /// this endpoint was created after the capture point, so in the restored
  /// world it must not exist — but later snapshots still reference its
  /// address, so the object itself must stay allocated. Its stale timer
  /// handles are detached (not cancelled: their slot/generation pairs may
  /// now name live events owned by others).
  void snapshot_zombify();

  // ---- Introspection ---------------------------------------------------
  TcpState state() const { return state_; }
  bool released() const { return released_; }
  const TcpEndpointStats& stats() const { return stats_; }
  const TcpEndpointConfig& config() const { return config_; }
  const TcpProfile& profile() const { return *profile_; }
  std::size_t send_queue_bytes() const { return send_buf_.size(); }
  std::size_t cwnd() const { return cc_.cwnd(); }
  Seq snd_nxt() const { return snd_nxt_; }
  Seq rcv_nxt() const { return rcv_nxt_; }
  bool sack_enabled() const { return sack_enabled_; }
  std::size_t sack_scoreboard_ranges() const { return sacked_.size(); }

 private:
  // Segment processing, in RFC 793 "segment arrives" order.
  void handle_syn_sent(const Segment& s);
  void handle_syn_rcvd(const Segment& s);
  void handle_synchronized(const Segment& s);
  bool handle_invalid_flags(const Segment& s);
  void process_ack(const Segment& s);
  void process_payload(const Segment& s);
  void process_fin(const Segment& s);

  // SACK (RFC 2018/2883).
  /// Folds the ACK's SACK blocks into the sender scoreboard. `saw_dsack`
  /// reports a leading duplicate block at or below the cumulative ACK;
  /// `advanced` reports that the scoreboard now covers new sequence space.
  void absorb_sack(const Segment& s, bool& saw_dsack, bool& advanced);
  /// The SACK blocks the receiver side advertises right now: coalesced
  /// out-of-order ranges, most recently changed first, optional leading
  /// DSACK block, truncated to Segment::kMaxSackBlocks.
  std::vector<SackBlock> receiver_sack_blocks(const SackBlock* dsack_block) const;
  /// Retransmits the first scoreboard hole at or after sack_retx_next_.
  void retransmit_next_hole();

  // Output.
  /// Takes the payload by value so data segments move their bytes straight
  /// into the Segment instead of re-copying ~MSS per packet on the hot path.
  void emit(std::uint8_t flags, Seq seq, Bytes payload = {}, bool dsack = false,
            const SackBlock* dsack_block = nullptr);
  void send_ack(bool dsack = false, const SackBlock* dsack_block = nullptr);
  void send_rst(Seq seq, bool with_ack = false);
  void try_send();
  void send_fin_if_ready();
  std::uint16_t advertised_window() const;
  bool covers_push_point(std::uint64_t start_offset, std::uint64_t end_offset) const;

  // Timers & reliability. `restart` forces the timer deadline to be
  // recomputed from now (RFC 6298: restart on each ACK of new data).
  void arm_retransmit(bool restart = false);
  void on_retransmit_timeout();
  void retransmit_one();
  void start_rtt_sample(Seq seq);
  void take_rtt_sample(Seq acked_to);
  void enter_time_wait();
  void set_state(TcpState next);
  void release();
  void reset_connection(bool notify);

  std::size_t flight_bytes() const { return snd_nxt_ - snd_una_; }
  std::size_t unsent_bytes() const {
    return send_buf_.size() - std::min<std::size_t>(send_buf_.size(), snd_nxt_ - snd_una_);
  }

  sim::Node& node_;
  const TcpProfile* profile_;
  TcpEndpointConfig config_;
  TcpCallbacks callbacks_;
  snake::Rng rng_;
  std::function<void()> on_released_;

  TcpState state_ = TcpState::kClosed;
  bool released_ = false;

  // Send sequence space.
  Seq iss_ = 0;
  Seq snd_una_ = 0;
  Seq snd_nxt_ = 0;
  Seq snd_max_ = 0;  ///< highest sequence ever sent (survives RTO rewind)
  std::uint32_t snd_wnd_ = 0;
  std::deque<std::uint8_t> send_buf_;  ///< bytes [snd_una_, snd_una_+size)
  // Stream-offset bookkeeping for PSH: real stacks set PSH on the final
  // segment of each application write, so bulk data carries PSH "only
  // occasionally". Offsets are cumulative byte counts since connect.
  std::uint64_t queued_total_ = 0;
  std::uint64_t acked_total_ = 0;
  std::deque<std::uint64_t> push_points_;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  Seq fin_seq_ = 0;
  bool app_exited_ = false;

  // Receive sequence space.
  Seq irs_ = 0;
  Seq rcv_nxt_ = 0;
  std::map<Seq, Bytes, SeqCircularLess> out_of_order_;  ///< wrap-safe ordering
  std::size_t out_of_order_bytes_ = 0;
  bool remote_fin_seen_ = false;

  // SACK (RFC 2018/2883). Negotiated on the handshake; the sender scoreboard
  // holds disjoint SACKed ranges strictly above snd_una_, coalesced and
  // pruned as the cumulative ACK advances, cleared on RTO (reneging safety).
  bool sack_enabled_ = false;
  std::map<Seq, Seq, SeqCircularLess> sacked_;  ///< start -> end, wrap-safe order
  Seq sack_retx_next_ = 0;  ///< next hole candidate in the current recovery
  std::optional<Seq> last_ooo_start_;  ///< most recent out-of-order arrival

  // Congestion control & recovery.
  CongestionControl cc_;
  Seq recover_ = 0;
  Seq last_retx_end_ = 0;  ///< end of the most recent loss-recovery retransmit

  // RTT estimation (RFC 6298).
  std::optional<Duration> srtt_;
  Duration rttvar_ = Duration::zero();
  Duration rto_;
  std::optional<Seq> timed_seq_;
  TimePoint timed_at_;

  // Timers.
  sim::Timer retransmit_timer_;
  /// Lazy RTO restart: every ACK restarts the retransmit clock, but a
  /// cancel + reschedule per ACK is the largest single source of scheduler
  /// traffic in a bulk transfer. The physical event stays at `rtx_fire_at_`
  /// and `rtx_deadline_` records where the clock logically is; a fire before
  /// the deadline re-sleeps instead of timing out.
  TimePoint rtx_deadline_;
  TimePoint rtx_fire_at_;
  sim::Timer time_wait_timer_;
  int retries_ = 0;

  TcpEndpointStats stats_;
};

}  // namespace snake::tcp
