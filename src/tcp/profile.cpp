#include "tcp/profile.h"

#include <stdexcept>

namespace snake::tcp {

const char* to_string(InvalidFlagPolicy policy) {
  switch (policy) {
    case InvalidFlagPolicy::kIgnore: return "ignore";
    case InvalidFlagPolicy::kBestEffort: return "best-effort";
    case InvalidFlagPolicy::kRstFirst: return "rst-first";
  }
  return "?";
}

const TcpProfile& linux_3_0_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "linux-3.0.0";
    p.invalid_flags = InvalidFlagPolicy::kBestEffort;
    p.dsack_dupack_suppression = true;
    p.rst_data_after_fin = true;
    return p;
  }();
  return profile;
}

const TcpProfile& linux_3_13_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "linux-3.13";
    p.invalid_flags = InvalidFlagPolicy::kIgnore;  // "appears to have fixed these problems"
    p.dsack_dupack_suppression = true;
    p.rst_data_after_fin = true;
    return p;
  }();
  return profile;
}

const TcpProfile& windows_8_1_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "windows-8.1";
    p.invalid_flags = InvalidFlagPolicy::kRstFirst;
    p.dsack_dupack_suppression = false;  // enables Duplicate ACK Rate Limiting
    return p;
  }();
  return profile;
}

const TcpProfile& windows_95_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "windows-95";
    p.invalid_flags = InvalidFlagPolicy::kIgnore;
    p.naive_cwnd_per_ack = true;   // enables Duplicate ACK Spoofing
    p.fast_retransmit = false;     // RTO-only loss recovery
    p.dsack_dupack_suppression = false;
    return p;
  }();
  return profile;
}

const TcpProfile& sack_rfc2018_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "sack-rfc2018";
    p.invalid_flags = InvalidFlagPolicy::kIgnore;
    p.dsack_dupack_suppression = true;
    p.rst_data_after_fin = true;
    p.sack = true;
    return p;
  }();
  return profile;
}

const TcpProfile& sack_renege_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "sack-renege";
    p.invalid_flags = InvalidFlagPolicy::kIgnore;
    p.dsack_dupack_suppression = true;
    p.rst_data_after_fin = true;
    p.sack = true;
    p.sack_renege = true;
    return p;
  }();
  return profile;
}

const TcpProfile& sack_dsack_profile() {
  static const TcpProfile profile = [] {
    TcpProfile p;
    p.name = "sack-dsack";
    p.invalid_flags = InvalidFlagPolicy::kIgnore;
    p.dsack_dupack_suppression = true;
    p.rst_data_after_fin = true;
    p.sack = true;
    p.dsack_blocks = true;
    return p;
  }();
  return profile;
}

const std::vector<TcpProfile>& all_tcp_profiles() {
  static const std::vector<TcpProfile> profiles = {
      linux_3_0_profile(),    linux_3_13_profile(),  windows_8_1_profile(),
      windows_95_profile(),   sack_rfc2018_profile(), sack_renege_profile(),
      sack_dsack_profile()};
  return profiles;
}

const TcpProfile& tcp_profile_by_name(const std::string& name) {
  for (const TcpProfile& p : all_tcp_profiles())
    if (p.name == name) return p;
  throw std::invalid_argument("unknown TCP profile '" + name + "'");
}

}  // namespace snake::tcp
