// TCP New Reno congestion control (RFC 5681/6582), parameterized by the
// profile quirks the paper's attacks exploit.
//
// Separated from the endpoint so the Duplicate ACK Spoofing and Duplicate
// ACK Rate Limiting mechanics can be unit-tested and ablated in isolation:
//  - naive_cwnd_per_ack (Windows 95): every ACK, duplicate or not, grows
//    cwnd and no outstanding-data check is applied.
//  - dsack_dupack_suppression (Linux): duplicate ACKs flagged as caused by
//    duplicate segments (DSACK) do not count toward fast retransmit.
#pragma once

#include <cstdint>

#include "tcp/profile.h"

namespace snake::tcp {

class CongestionControl {
 public:
  CongestionControl(std::size_t mss, const TcpProfile& profile);

  /// An ACK advancing snd_una. `acked` is the newly acknowledged byte count;
  /// `flight_before` the bytes that were outstanding when it arrived.
  void on_new_ack(std::size_t acked, std::size_t flight_before);

  /// A duplicate ACK. `dsack` is the receiver's duplicate-segment
  /// indication. Returns true when fast retransmit should fire now (third
  /// countable duplicate, not already in recovery).
  bool on_dup_ack(bool dsack, std::size_t flight_before);

  /// NewReno partial ACK: recovery continues, deflate by the acked amount.
  void on_partial_ack(std::size_t acked);

  /// Recovery point crossed: deflate cwnd to ssthresh and leave recovery.
  void on_full_ack();

  /// Retransmission timeout: multiplicative decrease to one segment.
  void on_rto(std::size_t flight);

  bool in_recovery() const { return in_recovery_; }
  std::size_t cwnd() const { return cwnd_; }
  std::size_t ssthresh() const { return ssthresh_; }
  int dup_acks() const { return dup_acks_; }

  static constexpr int kDupAckThreshold = 3;

 private:
  void grow(std::size_t acked, std::size_t flight_before);

  std::size_t mss_;
  const TcpProfile* profile_;
  std::size_t cwnd_;
  std::size_t ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
};

}  // namespace snake::tcp
