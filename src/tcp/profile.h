// Behavioural profiles for the TCP implementations under test.
//
// The paper tests unmodified network stacks inside VMs: Linux 3.0.0, Linux
// 3.13, Windows 8.1 and Windows 95. This reproduction cannot run those
// kernels, so each stack's *documented, attack-relevant behaviours* are
// captured as a profile over one faithful TCP implementation (see DESIGN.md,
// substitution table). Every flag below traces to a specific finding in the
// paper's Section VI.A:
//
//  - invalid_flags: how nonsensical flag combinations are treated
//    ("Packets with Invalid Flags": Linux 3.0.0 best-effort processes them,
//    Windows 8.1 resets if RST is set, Linux 3.13 ignores them).
//  - naive_cwnd_per_ack: Windows 95 grows its congestion window on every
//    acknowledgment, duplicate or not, enabling Duplicate Acknowledgment
//    Spoofing (Savage et al.).
//  - dsack_dupack_suppression: Linux senders recognize acknowledgments
//    triggered by duplicate segments (DSACK, RFC 2883) and do not count them
//    toward fast retransmit; Windows 8.1 does not, enabling Duplicate
//    Acknowledgment Rate Limiting.
//  - rst_data_after_fin: a Linux client that exits mid-transfer FINs and
//    then answers further data with RST — the raw material of the
//    CLOSE_WAIT Resource Exhaustion attack (blocking those RSTs wedges the
//    server).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace snake::tcp {

/// Handling of packets whose flag combination matches no valid packet type.
enum class InvalidFlagPolicy {
  kIgnore,      ///< silently drop (Linux 3.13, Windows 95)
  kBestEffort,  ///< interpret the flags as far as possible; answers a
                ///< flagless packet with a duplicate ACK (Linux 3.0.0)
  kRstFirst,    ///< if RST is among the flags, reset regardless of the rest;
                ///< otherwise ignore (Windows 8.1)
};

const char* to_string(InvalidFlagPolicy policy);

struct TcpProfile {
  std::string name = "generic";

  InvalidFlagPolicy invalid_flags = InvalidFlagPolicy::kIgnore;

  /// Congestion window grows on every ACK received, including duplicates,
  /// with no outstanding-data check (pre-RFC-2581 behaviour).
  bool naive_cwnd_per_ack = false;

  /// Fast retransmit / fast recovery implemented? The original Windows 95
  /// stack predates them: duplicate ACKs are not loss signals at all (loss
  /// recovery is RTO-only), which is why feeding it spoofed duplicates is
  /// pure upside for the attacker.
  bool fast_retransmit = true;

  /// Duplicate ACKs that carry a DSACK indication (receiver saw a duplicate
  /// segment, not a hole) do not count toward the fast-retransmit threshold.
  bool dsack_dupack_suppression = false;

  /// After the local application exits with data still in flight, respond
  /// to further incoming data with RST instead of acknowledging it.
  bool rst_data_after_fin = false;

  /// Selective acknowledgments (RFC 2018): negotiate SACK-permitted on the
  /// SYN, emit SACK blocks describing out-of-order data, and keep a sender
  /// scoreboard so retransmissions skip SACKed ranges.
  bool sack = false;

  /// DSACK (RFC 2883): the first SACK block of an ACK triggered by a
  /// duplicate segment reports the duplicate range (at or below the
  /// cumulative ACK) instead of only setting the coarse dsack header bit.
  bool dsack_blocks = false;

  /// Reneging: under receive-buffer pressure the receiver discards data it
  /// already SACKed. RFC 2018 permits this ("the data receiver MAY later
  /// discard"), and it is exactly the behaviour that makes a sender who
  /// trusts its scoreboard too much wedge a transfer.
  bool sack_renege = false;

  /// Retransmission give-up threshold (Linux tcp_retries2 defaults to 15,
  /// which the paper cites as 13-30 minutes of stuck CLOSE_WAIT).
  int max_retries = 15;

  /// Lower bound on the retransmission timeout.
  Duration min_rto = Duration::millis(200);

  /// Initial congestion window in segments.
  std::uint32_t initial_cwnd_segments = 2;

  /// Initial slow-start threshold. Real stacks seed this from route caches /
  /// receiver windows; an unbounded initial ssthresh makes slow start
  /// overshoot the path by 2x and burst-lose a whole window, which NewReno
  /// (no SACK modeled) recovers from painfully.
  std::size_t initial_ssthresh = 48 * 1024;

  /// Upper clamp on cwnd (including fast-recovery inflation). Matches the
  /// effect of the un-scaled 16-bit receive windows our stacks advertise.
  std::size_t max_cwnd = 128 * 1024;
};

/// The four stacks evaluated in the paper.
const TcpProfile& linux_3_0_profile();
const TcpProfile& linux_3_13_profile();
const TcpProfile& windows_8_1_profile();
const TcpProfile& windows_95_profile();

/// SACK-capable variants (not from the paper's Table I; they extend the
/// attack surface to RFC 2018/2883 processing).
const TcpProfile& sack_rfc2018_profile();  ///< conformant SACK + scoreboard
const TcpProfile& sack_renege_profile();   ///< SACK but discards SACKed data
const TcpProfile& sack_dsack_profile();    ///< SACK + DSACK blocks (RFC 2883)

/// All profiles: the paper's four in Table I order, then the SACK variants.
const std::vector<TcpProfile>& all_tcp_profiles();

/// Lookup by name ("linux-3.0.0", ...); throws std::invalid_argument.
const TcpProfile& tcp_profile_by_name(const std::string& name);

}  // namespace snake::tcp
