// TCP segment: the typed view the endpoints work with, plus wire
// serialization matching the DSL layout in src/packet/tcp_format.h (the
// proxy manipulates segments in wire form, the endpoints in typed form;
// parse/serialize round-trips between the two).
//
// Options are real wire bytes in [20, data_offset*4): kind-4 SACK-permitted
// on SYNs, kind-5 SACK blocks on ACKs (RFC 2018/2883), NOP-padded to 32-bit
// alignment. The whole-buffer checksum covers them, and the compiled codec's
// fixed-offset accessors are unaffected because every DSL field lives in the
// 20-byte fixed part. The sack_flag/dsack_flag reserved bits mirror the
// option content so per-packet classification stays option-blind.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tcp/seq.h"
#include "util/bytes.h"

namespace snake::tcp {

/// One SACK block: received bytes [start, end) above the cumulative ACK —
/// or, for a leading DSACK block (RFC 2883), a duplicate range at or below
/// it.
struct SackBlock {
  Seq start = 0;
  Seq end = 0;

  bool operator==(const SackBlock& other) const {
    return start == other.start && end == other.end;
  }
};

struct Segment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Seq seq = 0;
  Seq ack = 0;
  std::uint8_t flags = 0;  // TcpFlag bits
  std::uint16_t window = 0;
  std::uint16_t urgent_ptr = 0;

  /// Model extension in the `reserved` header bits: DSACK indication. Real
  /// stacks carry this as a SACK option (RFC 2883); we also surface it as one
  /// header bit so option-free profiles keep their 20-byte headers. Set by a
  /// receiver whose ACK was triggered by a fully-duplicate segment.
  bool dsack = false;

  /// SACK-permitted option (kind 4) — SYN/SYN+ACK negotiation, RFC 2018 §2.
  bool sack_permitted = false;

  /// SACK blocks (kind 5), most recently changed first per RFC 2018 §4; a
  /// DSACK-emitting profile puts the duplicate range in blocks[0] (RFC 2883).
  /// At most kMaxSackBlocks survive serialization.
  std::vector<SackBlock> sack_blocks;

  Bytes payload;

  static constexpr std::size_t kMaxSackBlocks = 4;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  /// Sequence space consumed: payload plus one for SYN and one for FIN.
  std::uint32_t seq_len() const;

  /// Option bytes this segment serializes to (NOP padding included).
  std::size_t option_bytes() const;

  /// Human-readable one-liner for traces: "SYN seq=1 ack=0 len=0".
  std::string summary() const;
};

/// Serializes to the header (20 bytes + options) + payload wire format with
/// a valid checksum; data_offset accounts for the option bytes.
Bytes serialize(const Segment& segment);

/// Serializes into `out` (cleared first), reusing its capacity — the
/// endpoint hot path feeds this recycled buffers from the scenario's
/// sim::BufferPool so steady-state sends allocate nothing.
void serialize_into(const Segment& segment, Bytes& out);

/// Parses wire bytes; returns std::nullopt for truncated input, a bad
/// checksum, or malformed options (the receiving stack drops such packets
/// silently).
std::optional<Segment> parse_segment(const Bytes& raw);

}  // namespace snake::tcp
