// TCP segment: the typed view the endpoints work with, plus wire
// serialization matching the DSL layout in src/packet/tcp_format.h (the
// proxy manipulates segments in wire form, the endpoints in typed form;
// parse/serialize round-trips between the two).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tcp/seq.h"
#include "util/bytes.h"

namespace snake::tcp {

struct Segment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Seq seq = 0;
  Seq ack = 0;
  std::uint8_t flags = 0;  // TcpFlag bits
  std::uint16_t window = 0;
  std::uint16_t urgent_ptr = 0;

  /// Model extension in the `reserved` header bits: DSACK indication. Real
  /// stacks carry this as a SACK option (RFC 2883); we surface it as one
  /// header bit so the 20-byte fixed header stays option-free. Set by a
  /// receiver whose ACK was triggered by a fully-duplicate segment.
  bool dsack = false;

  Bytes payload;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  /// Sequence space consumed: payload plus one for SYN and one for FIN.
  std::uint32_t seq_len() const;

  /// Human-readable one-liner for traces: "SYN seq=1 ack=0 len=0".
  std::string summary() const;
};

/// Serializes to the 20-byte header + payload wire format with a valid
/// checksum.
Bytes serialize(const Segment& segment);

/// Serializes into `out` (cleared first), reusing its capacity — the
/// endpoint hot path feeds this recycled buffers from the scenario's
/// sim::BufferPool so steady-state sends allocate nothing.
void serialize_into(const Segment& segment, Bytes& out);

/// Parses wire bytes; returns std::nullopt for truncated input or a bad
/// checksum (the receiving stack drops such packets silently).
std::optional<Segment> parse_segment(const Bytes& raw);

}  // namespace snake::tcp
