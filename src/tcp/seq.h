// 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).
//
// All comparisons are modular: "a < b" means a precedes b on the circle,
// which is well-defined when |a-b| < 2^31. The Reset and SYN-Reset attacks
// hinge on the in-window checks defined here.
#pragma once

#include <cstdint>

namespace snake::tcp {

using Seq = std::uint32_t;

/// Half the sequence space; the one distance where "a before b" is ambiguous.
constexpr std::uint32_t kSeqHalf = 0x80000000u;

/// True when a precedes b on the circle. The textbook signed-subtraction
/// trick maps a distance of exactly 2^31 to the same negative value in both
/// directions, making seq_lt(a, b) and seq_lt(b, a) simultaneously true —
/// which breaks antisymmetry and, through SeqCircularLess, strict weak
/// ordering (undefined behaviour once such keys coexist in a std::map of
/// buffered segments). Found by the property suite's ordering oracle
/// (property_test.cpp); the exact-half case now tie-breaks on the raw values
/// so exactly one direction wins.
inline bool seq_lt(Seq a, Seq b) {
  std::uint32_t ahead = b - a;  // how far b is ahead of a, mod 2^32
  if (ahead == kSeqHalf) return a < b;
  return ahead != 0 && ahead < kSeqHalf;
}
inline bool seq_gt(Seq a, Seq b) { return seq_lt(b, a); }
inline bool seq_leq(Seq a, Seq b) { return !seq_lt(b, a); }
inline bool seq_geq(Seq a, Seq b) { return !seq_lt(a, b); }

/// RFC 793 acceptance test: is `seq` within [rcv_nxt, rcv_nxt + rcv_wnd)?
/// This is exactly the check the "slipping in the window" reset attack
/// exploits: any RST whose sequence number lands in this window kills the
/// connection.
inline bool in_window(Seq seq, Seq rcv_nxt, std::uint32_t rcv_wnd) {
  return seq_geq(seq, rcv_nxt) && seq_lt(seq, rcv_nxt + rcv_wnd);
}

/// Strict-weak ordering on the sequence circle; transitive whenever all
/// compared values lie within one half-circle of each other — true for
/// anything window-bounded, e.g. buffered out-of-order segments. Thanks to
/// the exact-half tie-break in seq_lt, no pair of keys ever compares
/// "both less", so irreflexivity and antisymmetry hold unconditionally.
struct SeqCircularLess {
  bool operator()(Seq a, Seq b) const { return seq_lt(a, b); }
};

/// Does the segment [seq, seq+len) overlap the receive window?
inline bool segment_acceptable(Seq seq, std::uint32_t len, Seq rcv_nxt, std::uint32_t rcv_wnd) {
  if (rcv_wnd == 0) return len == 0 && seq == rcv_nxt;
  if (len == 0) return in_window(seq, rcv_nxt, rcv_wnd);
  return in_window(seq, rcv_nxt, rcv_wnd) || in_window(seq + len - 1, rcv_nxt, rcv_wnd);
}

}  // namespace snake::tcp
