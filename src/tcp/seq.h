// 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).
//
// All comparisons are modular: "a < b" means a precedes b on the circle,
// which is well-defined when |a-b| < 2^31. The Reset and SYN-Reset attacks
// hinge on the in-window checks defined here.
#pragma once

#include <cstdint>

namespace snake::tcp {

using Seq = std::uint32_t;

inline bool seq_lt(Seq a, Seq b) { return static_cast<std::int32_t>(a - b) < 0; }
inline bool seq_leq(Seq a, Seq b) { return static_cast<std::int32_t>(a - b) <= 0; }
inline bool seq_gt(Seq a, Seq b) { return static_cast<std::int32_t>(a - b) > 0; }
inline bool seq_geq(Seq a, Seq b) { return static_cast<std::int32_t>(a - b) >= 0; }

/// RFC 793 acceptance test: is `seq` within [rcv_nxt, rcv_nxt + rcv_wnd)?
/// This is exactly the check the "slipping in the window" reset attack
/// exploits: any RST whose sequence number lands in this window kills the
/// connection.
inline bool in_window(Seq seq, Seq rcv_nxt, std::uint32_t rcv_wnd) {
  return seq_geq(seq, rcv_nxt) && seq_lt(seq, rcv_nxt + rcv_wnd);
}

/// Strict-weak ordering on the sequence circle; valid (and total) whenever
/// all compared values lie within one half-circle of each other — true for
/// anything window-bounded, e.g. buffered out-of-order segments.
struct SeqCircularLess {
  bool operator()(Seq a, Seq b) const { return seq_lt(a, b); }
};

/// Does the segment [seq, seq+len) overlap the receive window?
inline bool segment_acceptable(Seq seq, std::uint32_t len, Seq rcv_nxt, std::uint32_t rcv_wnd) {
  if (rcv_wnd == 0) return len == 0 && seq == rcv_nxt;
  if (len == 0) return in_window(seq, rcv_nxt, rcv_wnd);
  return in_window(seq, rcv_nxt, rcv_wnd) || in_window(seq + len - 1, rcv_nxt, rcv_wnd);
}

}  // namespace snake::tcp
