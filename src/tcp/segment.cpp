#include "tcp/segment.h"

#include <algorithm>

#include "packet/tcp_format.h"
#include "util/checksum.h"
#include "util/strings.h"

namespace snake::tcp {

namespace {
constexpr std::size_t kFixedHeaderBytes = packet::kTcpHeaderBytes;
constexpr std::size_t kChecksumOffset = 16;

/// Parses the option bytes in [kFixedHeaderBytes, header_bytes). Returns
/// false on malformed options (bad length byte, option overrunning the
/// header, SACK block list not a whole number of 8-byte blocks).
bool parse_options(const Bytes& raw, std::size_t header_bytes, Segment& s) {
  std::size_t at = kFixedHeaderBytes;
  while (at < header_bytes) {
    std::uint8_t kind = raw[at];
    if (kind == packet::kTcpOptEol) return true;
    if (kind == packet::kTcpOptNop) {
      ++at;
      continue;
    }
    if (at + 1 >= header_bytes) return false;  // kind without a length byte
    std::size_t len = raw[at + 1];
    if (len < 2 || at + len > header_bytes) return false;
    switch (kind) {
      case packet::kTcpOptSackPermitted:
        if (len != 2) return false;
        s.sack_permitted = true;
        break;
      case packet::kTcpOptSack: {
        std::size_t body = len - 2;
        if (body == 0 || body % 8 != 0) return false;
        std::size_t blocks = body / 8;
        if (blocks > Segment::kMaxSackBlocks) return false;
        ByteReader r(raw.data() + at + 2, body);
        for (std::size_t i = 0; i < blocks; ++i) {
          SackBlock b;
          b.start = r.u32();
          b.end = r.u32();
          s.sack_blocks.push_back(b);
        }
        break;
      }
      default:
        break;  // unknown option: skip by its length
    }
    at += len;
  }
  return true;
}
}  // namespace

std::uint32_t Segment::seq_len() const {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  if (has(packet::kTcpSyn)) ++len;
  if (has(packet::kTcpFin)) ++len;
  return len;
}

std::size_t Segment::option_bytes() const {
  std::size_t n = 0;
  if (sack_permitted) n += 4;  // NOP NOP kind-4 len-2
  if (!sack_blocks.empty()) {
    std::size_t blocks = std::min(sack_blocks.size(), kMaxSackBlocks);
    n += 4 + 8 * blocks;  // NOP NOP kind-5 len, then 8 bytes per block
  }
  return n;
}

std::string Segment::summary() const {
  std::string names;
  if (has(packet::kTcpSyn)) names += "SYN+";
  if (has(packet::kTcpFin)) names += "FIN+";
  if (has(packet::kTcpRst)) names += "RST+";
  if (has(packet::kTcpPsh)) names += "PSH+";
  if (has(packet::kTcpAck)) names += "ACK+";
  if (has(packet::kTcpUrg)) names += "URG+";
  if (names.empty())
    names = "none";
  else
    names.pop_back();
  std::string line = str_format("%s seq=%u ack=%u len=%zu win=%u", names.c_str(), seq, ack,
                                payload.size(), window);
  if (!sack_blocks.empty()) line += str_format(" sack=%zu", sack_blocks.size());
  return line;
}

Bytes serialize(const Segment& segment) {
  Bytes out;
  serialize_into(segment, out);
  return out;
}

void serialize_into(const Segment& segment, Bytes& out) {
  std::size_t options = segment.option_bytes();
  std::size_t header_bytes = kFixedHeaderBytes + options;
  out.clear();
  out.reserve(header_bytes + segment.payload.size());
  ByteWriter w(out);
  w.u16(segment.src_port);
  w.u16(segment.dst_port);
  w.u32(segment.seq);
  w.u32(segment.ack);
  std::size_t blocks = std::min(segment.sack_blocks.size(), Segment::kMaxSackBlocks);
  std::uint8_t reserved = 0;
  if (segment.dsack) reserved |= packet::kTcpDsackReservedBit;
  if (blocks > 0) reserved |= packet::kTcpSackReservedBit;
  std::uint16_t offset_reserved_flags =
      static_cast<std::uint16_t>(((header_bytes / 4) << 12) | (reserved << 6) |
                                 (segment.flags & 0x3F));
  w.u16(offset_reserved_flags);
  w.u16(segment.window);
  w.u16(0);  // checksum placeholder
  w.u16(segment.urgent_ptr);
  if (segment.sack_permitted) {
    w.u8(packet::kTcpOptNop);
    w.u8(packet::kTcpOptNop);
    w.u8(packet::kTcpOptSackPermitted);
    w.u8(2);
  }
  if (blocks > 0) {
    w.u8(packet::kTcpOptNop);
    w.u8(packet::kTcpOptNop);
    w.u8(packet::kTcpOptSack);
    w.u8(static_cast<std::uint8_t>(2 + 8 * blocks));
    for (std::size_t i = 0; i < blocks; ++i) {
      w.u32(segment.sack_blocks[i].start);
      w.u32(segment.sack_blocks[i].end);
    }
  }
  w.raw(segment.payload);
  fill_embedded_checksum(out, kChecksumOffset);
}

std::optional<Segment> parse_segment(const Bytes& raw) {
  if (raw.size() < kFixedHeaderBytes) return std::nullopt;
  if (!verify_embedded_checksum(raw, kChecksumOffset)) return std::nullopt;
  ByteReader r(raw);
  Segment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  std::uint16_t offset_reserved_flags = r.u16();
  s.flags = static_cast<std::uint8_t>(offset_reserved_flags & 0x3F);
  s.dsack = ((offset_reserved_flags >> 6) & packet::kTcpDsackReservedBit) != 0;
  std::size_t header_bytes = static_cast<std::size_t>((offset_reserved_flags >> 12) & 0xF) * 4;
  s.window = r.u16();
  r.u16();  // checksum, already verified
  s.urgent_ptr = r.u16();
  if (header_bytes < kFixedHeaderBytes || header_bytes > raw.size()) return std::nullopt;
  if (!parse_options(raw, header_bytes, s)) return std::nullopt;
  s.payload = Bytes(raw.begin() + static_cast<std::ptrdiff_t>(header_bytes), raw.end());
  return s;
}

}  // namespace snake::tcp
