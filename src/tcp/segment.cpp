#include "tcp/segment.h"

#include "packet/tcp_format.h"
#include "util/checksum.h"
#include "util/strings.h"

namespace snake::tcp {

namespace {
constexpr std::size_t kHeaderBytes = packet::kTcpHeaderBytes;
constexpr std::size_t kChecksumOffset = 16;
// data_offset is expressed in 32-bit words, as in RFC 793.
constexpr std::uint8_t kDataOffsetWords = kHeaderBytes / 4;
// The DSACK model bit lives in the top bit of the 6-bit reserved field.
constexpr std::uint8_t kDsackReservedBit = 0x20;
}  // namespace

std::uint32_t Segment::seq_len() const {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  if (has(packet::kTcpSyn)) ++len;
  if (has(packet::kTcpFin)) ++len;
  return len;
}

std::string Segment::summary() const {
  std::string names;
  if (has(packet::kTcpSyn)) names += "SYN+";
  if (has(packet::kTcpFin)) names += "FIN+";
  if (has(packet::kTcpRst)) names += "RST+";
  if (has(packet::kTcpPsh)) names += "PSH+";
  if (has(packet::kTcpAck)) names += "ACK+";
  if (has(packet::kTcpUrg)) names += "URG+";
  if (names.empty())
    names = "none";
  else
    names.pop_back();
  return str_format("%s seq=%u ack=%u len=%zu win=%u", names.c_str(), seq, ack, payload.size(),
                    window);
}

Bytes serialize(const Segment& segment) {
  Bytes out;
  serialize_into(segment, out);
  return out;
}

void serialize_into(const Segment& segment, Bytes& out) {
  out.clear();
  out.reserve(kHeaderBytes + segment.payload.size());
  ByteWriter w(out);
  w.u16(segment.src_port);
  w.u16(segment.dst_port);
  w.u32(segment.seq);
  w.u32(segment.ack);
  std::uint16_t offset_reserved_flags =
      static_cast<std::uint16_t>((kDataOffsetWords << 12) |
                                 ((segment.dsack ? kDsackReservedBit : 0) << 6) |
                                 (segment.flags & 0x3F));
  w.u16(offset_reserved_flags);
  w.u16(segment.window);
  w.u16(0);  // checksum placeholder
  w.u16(segment.urgent_ptr);
  w.raw(segment.payload);
  fill_embedded_checksum(out, kChecksumOffset);
}

std::optional<Segment> parse_segment(const Bytes& raw) {
  if (raw.size() < kHeaderBytes) return std::nullopt;
  if (!verify_embedded_checksum(raw, kChecksumOffset)) return std::nullopt;
  ByteReader r(raw);
  Segment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  std::uint16_t offset_reserved_flags = r.u16();
  s.flags = static_cast<std::uint8_t>(offset_reserved_flags & 0x3F);
  s.dsack = ((offset_reserved_flags >> 6) & kDsackReservedBit) != 0;
  std::size_t header_bytes = static_cast<std::size_t>((offset_reserved_flags >> 12) & 0xF) * 4;
  s.window = r.u16();
  r.u16();  // checksum, already verified
  s.urgent_ptr = r.u16();
  if (header_bytes < kHeaderBytes || header_bytes > raw.size()) return std::nullopt;
  s.payload = Bytes(raw.begin() + static_cast<std::ptrdiff_t>(header_bytes), raw.end());
  return s;
}

}  // namespace snake::tcp
