#include "tcp/stack.h"

#include "packet/tcp_format.h"
#include "util/logging.h"

namespace snake::tcp {

TcpStack::TcpStack(sim::Node& node, const TcpProfile& profile, snake::Rng rng)
    : node_(node), profile_(&profile), rng_(rng) {
  node_.register_protocol(sim::kProtoTcp,
                          [this](const sim::Packet& packet) { on_packet(packet); });
}

void TcpStack::reset(const TcpProfile& profile, snake::Rng rng) {
  // Endpoint destructors may cancel timers; after Scheduler::reset those
  // handles are stale, which generation counters make a safe no-op.
  endpoints_.clear();
  connections_.clear();
  listeners_.clear();
  next_ephemeral_port_ = 40000;
  profile_ = &profile;
  rng_ = rng;
  node_.register_protocol(sim::kProtoTcp,
                          [this](const sim::Packet& packet) { on_packet(packet); });
}

TcpEndpoint& TcpStack::connect(sim::Address remote, std::uint16_t remote_port,
                               TcpCallbacks callbacks) {
  return connect(remote, remote_port, std::move(callbacks), TcpEndpointConfig{});
}

TcpEndpoint& TcpStack::connect(sim::Address remote, std::uint16_t remote_port,
                               TcpCallbacks callbacks, TcpEndpointConfig config) {
  config.remote_addr = remote;
  config.remote_port = remote_port;
  config.local_port = next_ephemeral_port_++;
  TcpEndpoint& ep = create_endpoint(config, std::move(callbacks));
  ep.connect();
  return ep;
}

void TcpStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpEndpoint& TcpStack::create_endpoint(TcpEndpointConfig config, TcpCallbacks callbacks) {
  endpoints_.push_back(std::make_unique<TcpEndpoint>(node_, *profile_, config,
                                                     std::move(callbacks), rng_.fork(),
                                                     /*on_released=*/nullptr));
  TcpEndpoint* ep = endpoints_.back().get();
  connections_[ConnKey{config.remote_addr, config.remote_port, config.local_port}] = ep;
  return *ep;
}

void TcpStack::on_packet(const sim::Packet& packet) {
  std::optional<Segment> seg = parse_segment(packet.bytes);
  if (!seg.has_value()) {
    SNAKE_TRACE << node_.name() << " tcp rx malformed segment, dropped";
    return;
  }
  ConnKey key{packet.src, seg->src_port, seg->dst_port};
  auto it = connections_.find(key);
  if (it != connections_.end() && !it->second->released()) {
    it->second->on_segment(*seg);
    return;
  }

  // No live connection. A SYN to a listening port spawns a new endpoint.
  if (seg->has(packet::kTcpSyn) && !seg->has(packet::kTcpAck) && !seg->has(packet::kTcpRst)) {
    auto listener = listeners_.find(seg->dst_port);
    if (listener != listeners_.end()) {
      TcpEndpointConfig config;
      config.remote_addr = packet.src;
      config.remote_port = seg->src_port;
      config.local_port = seg->dst_port;
      TcpEndpoint& ep = create_endpoint(config, TcpCallbacks{});
      // The accept handler wires the application's callbacks before the
      // handshake reply goes out, so on_established can fire normally.
      ep.set_callbacks(listener->second(ep));
      ep.accept(seg->seq, seg->sack_permitted);
      return;
    }
  }

  // Closed port: answer non-RST with RST (RFC 793).
  if (!seg->has(packet::kTcpRst)) {
    Segment rst;
    rst.src_port = seg->dst_port;
    rst.dst_port = seg->src_port;
    if (seg->has(packet::kTcpAck)) {
      rst.flags = packet::kTcpRst;
      rst.seq = seg->ack;
    } else {
      rst.flags = packet::kTcpRst | packet::kTcpAck;
      rst.seq = 0;
      rst.ack = seg->seq + seg->seq_len();
    }
    sim::Packet reply;
    reply.dst = packet.src;
    reply.protocol = sim::kProtoTcp;
    reply.bytes = node_.scheduler().buffer_pool().acquire();
    serialize_into(rst, reply.bytes);
    node_.send_packet(std::move(reply));
  }
}

TcpStack::Snapshot TcpStack::capture() const {
  Snapshot snap;
  snap.rng = rng_;
  snap.next_ephemeral_port = next_ephemeral_port_;
  snap.endpoints.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) snap.endpoints.push_back(ep->capture_state());
  snap.connections.reserve(connections_.size());
  for (const auto& [key, ep] : connections_) {
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i].get() == ep) {
        snap.connections.emplace_back(key, static_cast<std::uint32_t>(i));
        break;
      }
    }
  }
  return snap;
}

void TcpStack::truncate_endpoints(std::size_t keep) {
  if (endpoints_.size() > keep) endpoints_.resize(keep);
}

void TcpStack::restore(const Snapshot& snap) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i < snap.endpoints.size()) {
      endpoints_[i]->restore_state(snap.endpoints[i]);
    } else {
      endpoints_[i]->snapshot_zombify();
    }
  }
  connections_.clear();
  for (const auto& [key, index] : snap.connections) connections_[key] = endpoints_[index].get();
  rng_ = snap.rng;
  next_ephemeral_port_ = snap.next_ephemeral_port;
}

std::size_t TcpStack::open_sockets(bool include_time_wait) const {
  std::size_t count = 0;
  for (const auto& ep : endpoints_) {
    if (ep->released()) continue;
    if (!include_time_wait && ep->state() == TcpState::kTimeWait) continue;
    ++count;
  }
  return count;
}

std::map<std::string, int> TcpStack::socket_states() const {
  std::map<std::string, int> out;
  for (const auto& ep : endpoints_) {
    if (ep->released()) continue;
    ++out[to_string(ep->state())];
  }
  return out;
}

}  // namespace snake::tcp
