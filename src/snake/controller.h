// The SNAKE controller: strategy scheduling, parallel executors, attack
// detection, repeatability retesting, and result classification — the
// in-process equivalent of the paper's controller + executor processes
// ("An executor first runs a non-attack test and then, for each strategy,
// runs the attack scenario and reports performance information back ...
// Attack strategies that appear successful are tested a second time to
// ensure repeatability.").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "search/search.h"
#include "snake/detector.h"
#include "snake/journal.h"
#include "snake/scenario.h"
#include "strategy/generator.h"

namespace snake::core {

class TrialBackend;
class TrialCache;

struct CampaignConfig {
  ScenarioConfig scenario;
  strategy::GeneratorConfig generator;

  int executors = 4;  ///< parallel worker threads ("we ran five executors")
  /// Retest seed: a candidate must reproduce under a different seed to count.
  std::uint64_t retest_seed_offset = 1000003;
  /// Optional cap on strategies tried (0 = unlimited); lets tests and quick
  /// demos run bounded campaigns.
  std::uint64_t max_strategies = 0;

  // --- Strategy search (see DESIGN.md, "Strategy search") ------------------
  /// How the campaign walks its strategy space. kGrid (default) enumerates
  /// the generator's output exhaustively — the paper's behaviour. kGreybox
  /// runs the fitness-guided pool search from src/search: generator output
  /// becomes the unexplored universe, trials feed tracker state-coverage and
  /// detector margin back into the pool, and promising strategies spawn
  /// mutated children under a power-schedule energy budget. Both modes run
  /// through the same dispatch/commit loop, so a greybox campaign is as
  /// bit-identical across backends, executor counts, snapshots and caches as
  /// a grid one (enforced in tests/search_test.cpp). Like the generator
  /// config, the mode only changes *which* strategies get tried — it stays
  /// out of the campaign identity hash, so grid and greybox campaigns share
  /// result-cache entries and resume journals.
  search::SearchMode search_mode = search::SearchMode::kGrid;
  /// Greybox knobs (ignored in grid mode).
  search::SearchConfig search;

  /// Combination phase (the paper's future work, with Turret's greedy
  /// flavour): after the single-strategy sweep, pair up to this many of the
  /// strongest distinct true-attack strategies and test each pair as a
  /// combined strategy. 0 disables the phase.
  std::size_t combine_top = 0;

  /// Detection threshold: a run is flagged when a throughput ratio leaves
  /// [threshold, 1 + threshold] (the paper's "at least 50%" criterion at the
  /// default). Used consistently by detection *and* signature/effect
  /// classification.
  double detect_threshold = 0.5;

  /// When true (default), the campaign records counters, stage timings and
  /// per-attack-action counts into CampaignResult::metrics. Each executor
  /// thread writes to a private registry, merged after the pool joins, so
  /// the sim hot path never takes a lock. Instrumentation does not perturb
  /// results: identical seeds give identical outcomes either way (enforced
  /// by the determinism test in observability_test.cpp).
  bool collect_metrics = true;

  /// When true (default), executors serve eligible trials from per-seed
  /// world checkpoints instead of replaying every run from t=0 (see
  /// snake/snapshot.h). Forked trials are bit-identical to replayed ones —
  /// campaigns produce byte-identical results either way (enforced in
  /// snapshot_test.cpp); this switch exists for benchmarking the speedup and
  /// as an escape hatch.
  bool use_snapshots = true;

  /// When true (default), trials stop at the deterministic quiescence cut
  /// instead of simulating out the fixed horizon (see
  /// ScenarioConfig::early_exit). Detections, classifications and signatures
  /// are equal on vs off (enforced in snapshot_test.cpp); the switch exists
  /// for A/B benchmarking and as an escape hatch. Rides the dist wire like
  /// use_snapshots and, like it, is excluded from the campaign identity hash
  /// — flipping it does not invalidate a resume journal.
  bool early_exit = true;

  /// Progress callback (strategies committed, total queued so far). Invoked
  /// from the coordinating thread, in commit order, with no campaign lock
  /// held — both arguments are monotonically non-decreasing across calls
  /// regardless of executor/worker interleaving (regression-tested in
  /// dist_test.cpp). It may block without stalling the executor pool.
  std::function<void(std::uint64_t, std::uint64_t)> on_progress;

  // --- Resilience layer ----------------------------------------------------
  /// Total attempts per trial (min 1). An attempt that fails — watchdog
  /// abort (scenario.event_budget / scenario.wall_limit_seconds) or an
  /// exception escaping the trial body — is retried with a perturbed seed; a
  /// strategy whose every attempt fails is quarantined and excluded from
  /// results (but listed in CampaignResult::quarantined).
  std::uint32_t trial_attempts = 2;
  /// Per-retry seed perturbation. A pure function of the retry index, so
  /// campaigns stay reproducible for equal seeds.
  std::uint64_t retry_seed_offset = 7919;
  /// Optional checkpoint journal (not owned). Every finished strategy is
  /// appended as one JSONL line; append failures increment
  /// campaign.journal_errors and never fail the campaign. The campaign
  /// writes the header line iff `resume` is null (a resumed journal already
  /// carries one).
  TrialJournal* journal = nullptr;
  /// Optional resume snapshot (not owned). Strategies found in it are not
  /// re-run: their outcome, failure tallies and generator feedback are
  /// replayed, so a resumed campaign reproduces the uninterrupted campaign's
  /// result for equal seeds. Snapshots from an incompatible campaign
  /// identity are ignored (campaign.resume_incompatible).
  const JournalSnapshot* resume = nullptr;

  // --- Distribution layer (see DESIGN.md, "Distribution architecture") -----
  /// Optional trial-execution backend (not owned). Null runs the default
  /// in-process thread pool (`executors` threads); dist::DistributedBackend
  /// runs the same campaign across worker *processes*. Outcomes are
  /// committed in dispatch order whatever the backend, so the result is a
  /// pure function of the seed — a distributed campaign equals its
  /// single-process twin bit for bit (enforced in dist_test.cpp). A backend
  /// whose start() fails is abandoned for the in-process pool
  /// (campaign.backend_fallback).
  TrialBackend* backend = nullptr;
  /// Optional cross-campaign result cache (not owned), pre-bound to this
  /// campaign's identity hash (see dist::ResultCache). A hit skips the
  /// simulation and replays the memoized record exactly like a journal
  /// resume; cached and uncached campaigns produce equal results.
  TrialCache* cache = nullptr;
};

/// Outcome of one successful (detected + repeatable) strategy.
struct StrategyOutcome {
  strategy::Strategy strat;
  Detection detection;
  AttackClass cls = AttackClass::kTrueAttack;
  std::string signature;
};

/// Outcome of one combined (pair) strategy from the combination phase.
struct CombinedOutcome {
  strategy::Strategy first;
  strategy::Strategy second;
  Detection detection;
  double impact_score = 0;       ///< see impact_score() in the detector
  double best_single_score = 0;  ///< max impact of the two components alone
  bool stronger_than_parts = false;
};

struct CampaignResult {
  std::string implementation;
  Protocol protocol = Protocol::kTcp;

  std::uint64_t strategies_tried = 0;
  std::vector<StrategyOutcome> found;  ///< all detected+repeatable strategies

  // --- Strategy search ------------------------------------------------------
  search::SearchMode search_mode = search::SearchMode::kGrid;
  /// 1-based commit index of the first found strategy (0 = none found). The
  /// bench's search-efficiency metric: how many trials a mode spends before
  /// its first confirmed attack.
  std::uint64_t trials_to_first_attack = 0;
  std::uint64_t search_rounds = 0;     ///< greybox rounds emitted (0 in grid)
  std::uint64_t search_mutations = 0;  ///< mutation children spawned

  // Table I columns.
  std::uint64_t attack_strategies_found = 0;
  std::uint64_t on_path = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_attack_strategies = 0;
  std::uint64_t unique_true_attacks = 0;
  std::vector<std::string> unique_signatures;

  // Combination phase (when enabled).
  std::vector<CombinedOutcome> combined;
  std::uint64_t combinations_tried = 0;
  std::uint64_t combinations_stronger = 0;

  RunMetrics baseline;

  // --- Resilience tallies (see DESIGN.md, "Resilience architecture") -------
  std::uint64_t trials_aborted = 0;  ///< attempts cut off by the watchdog
  std::uint64_t trials_errored = 0;  ///< attempts that threw
  std::uint64_t trials_retried = 0;  ///< retry attempts performed
  /// Trials replayed from the resume snapshot instead of run. The only
  /// resilience field that legitimately differs between a resumed campaign
  /// and its uninterrupted twin (which has 0).
  std::uint64_t resume_skipped = 0;
  std::uint64_t journal_errors = 0;  ///< journal appends that threw
  /// Trials whose verdict was replayed from the cross-campaign result cache
  /// instead of simulated (CampaignConfig::cache). Like resume_skipped, a
  /// legitimate difference between warm- and cold-cache twins.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_stores = 0;  ///< fresh verdicts written to the cache

  /// A strategy excluded from results because every attempt failed.
  struct Quarantined {
    strategy::Strategy strat;
    std::string key;  ///< strategy::canonical_key(strat)
    TrialVerdict verdict = TrialVerdict::kErrored;  ///< final attempt's fate
    std::uint32_t attempts = 1;
    std::string reason;  ///< last abort/error reason
  };
  /// Sorted by canonical key so the list is independent of executor
  /// interleaving.
  std::vector<Quarantined> quarantined;

  /// Campaign observability: merged per-executor registries (stage timings,
  /// scheduler/link/proxy/tracker counters, retest outcomes, detection
  /// reasons). Empty when CampaignConfig::collect_metrics was false.
  obs::MetricsRegistry metrics;

  /// Renders a Table-I-style row.
  std::string summary_row() const;

  /// Structured machine-readable report: Table-I columns, baseline metrics,
  /// every outcome with detection ratios + signature, combination-phase
  /// results, and the full metrics snapshot. Schema tag:
  /// "snake-campaign-report/v1" (see observability_test.cpp).
  std::string to_json() const;

  /// Streaming variant: writes the same document as one JSON value into `w`
  /// (which may be a sink-backed writer flushed between campaigns, so a long
  /// bench run never holds every report in memory at once).
  void write_json(obs::JsonWriter& w) const;
};

/// Runs a full campaign for one implementation.
CampaignResult run_campaign(const CampaignConfig& config);

/// Renders the Table I header matching CampaignResult::summary_row.
std::string table1_header();

/// Shared protocol plumbing, used by the controller, the in-process trial
/// runner and the distributed worker (src/dist) so every backend builds the
/// campaign from identical pieces.
const packet::HeaderFormat& format_for_protocol(Protocol protocol);
const statemachine::StateMachine& machine_for_protocol(Protocol protocol);

/// Tallies *why* a run was flagged, using the same threshold detection used.
/// The reason strings in Detection are for humans; these counters are the
/// machine-readable aggregate.
void count_detection_reasons(obs::MetricsRegistry* reg, const Detection& d,
                             double threshold);

}  // namespace snake::core
