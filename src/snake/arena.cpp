#include "snake/arena.h"

namespace snake::core {

struct ScenarioArena::TcpStacks {
  tcp::TcpStack client1;
  tcp::TcpStack client2;
  tcp::TcpStack server1;
  tcp::TcpStack server2;

  TcpStacks(sim::Dumbbell& net, const tcp::TcpProfile& profile, snake::Rng& rng)
      : client1(net.client1(), profile, rng.fork()),
        client2(net.client2(), profile, rng.fork()),
        server1(net.server1(), profile, rng.fork()),
        server2(net.server2(), profile, rng.fork()) {}
};

struct ScenarioArena::DccpStacks {
  dccp::DccpStack client1;
  dccp::DccpStack client2;
  dccp::DccpStack server1;
  dccp::DccpStack server2;

  DccpStacks(sim::Dumbbell& net, snake::Rng& rng)
      : client1(net.client1(), rng.fork()),
        client2(net.client2(), rng.fork()),
        server1(net.server1(), rng.fork()),
        server2(net.server2(), rng.fork()) {}
};

ScenarioArena::ScenarioArena() = default;

// Members are destroyed in reverse declaration order, so the stacks (whose
// endpoint destructors cancel timers against the scheduler) go before net_.
ScenarioArena::~ScenarioArena() = default;

void ScenarioArena::prepare_network(const sim::DumbbellConfig& topology) {
  if (net_ == nullptr || !net_->config_equals(topology)) {
    // The stacks hold references to nodes inside the old dumbbell; drop
    // them before the network they point into.
    tcp_.reset();
    dccp_.reset();
    net_ = std::make_unique<sim::Dumbbell>(topology);
  } else {
    net_->reset();
  }
}

ScenarioArena::TcpRig ScenarioArena::acquire_tcp(const sim::DumbbellConfig& topology,
                                                 const tcp::TcpProfile& profile,
                                                 snake::Rng& rng) {
  prepare_network(topology);
  // Stale endpoints from a previous DCCP trial would otherwise linger with
  // dangling timer handles; a rig is protocol-exclusive.
  dccp_.reset();
  // Overwriting the profile copy while last trial's endpoints still point at
  // it is fine: they are destroyed (without reading it) in reset() below.
  tcp_profile_ = profile;
  if (tcp_ == nullptr) {
    tcp_ = std::make_unique<TcpStacks>(*net_, tcp_profile_, rng);
  } else {
    tcp_->client1.reset(tcp_profile_, rng.fork());
    tcp_->client2.reset(tcp_profile_, rng.fork());
    tcp_->server1.reset(tcp_profile_, rng.fork());
    tcp_->server2.reset(tcp_profile_, rng.fork());
  }
  return TcpRig{net_.get(), &tcp_->client1, &tcp_->client2, &tcp_->server1, &tcp_->server2};
}

ScenarioArena::DccpRig ScenarioArena::acquire_dccp(const sim::DumbbellConfig& topology,
                                                   snake::Rng& rng) {
  prepare_network(topology);
  tcp_.reset();
  if (dccp_ == nullptr) {
    dccp_ = std::make_unique<DccpStacks>(*net_, rng);
  } else {
    dccp_->client1.reset(rng.fork());
    dccp_->client2.reset(rng.fork());
    dccp_->server1.reset(rng.fork());
    dccp_->server2.reset(rng.fork());
  }
  return DccpRig{net_.get(), &dccp_->client1, &dccp_->client2, &dccp_->server1,
                 &dccp_->server2};
}

}  // namespace snake::core
