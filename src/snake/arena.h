// Per-executor scenario arena: keeps one dumbbell network and one set of
// protocol stacks alive across trials so each run_scenario call resets them
// in place instead of rebuilding the whole rig. A campaign worker runs
// thousands of trials against the same topology; reconstruction was pure
// allocator churn (the paper's executors restore VM snapshots between runs
// for the same isolation guarantee this reset provides).
//
// Determinism contract: a run through a reused arena is bit-identical to a
// run through a fresh one — reset restores every piece of state a
// constructor would have initialised, and the RNG fork order (client1,
// client2, server1, server2, then proxy in the caller) is the same on both
// paths. tests/arena_test.cpp enforces this.
#pragma once

#include <memory>

#include "dccp/stack.h"
#include "sim/dumbbell.h"
#include "tcp/profile.h"
#include "tcp/stack.h"
#include "util/rng.h"

namespace snake::core {

class ScenarioArena {
 public:
  ScenarioArena();
  ~ScenarioArena();
  ScenarioArena(const ScenarioArena&) = delete;
  ScenarioArena& operator=(const ScenarioArena&) = delete;

  /// Non-owning view of the prepared rig, valid until the next acquire_*
  /// call or arena destruction.
  struct TcpRig {
    sim::Dumbbell* net;
    tcp::TcpStack* client1;
    tcp::TcpStack* client2;
    tcp::TcpStack* server1;
    tcp::TcpStack* server2;
  };
  struct DccpRig {
    sim::Dumbbell* net;
    dccp::DccpStack* client1;
    dccp::DccpStack* client2;
    dccp::DccpStack* server1;
    dccp::DccpStack* server2;
  };

  /// Returns a fully reset TCP rig for `topology`, reusing the cached
  /// dumbbell and stacks when possible (the dumbbell is rebuilt only when
  /// the topology config differs). Forks `rng` once per stack in the
  /// canonical order client1, client2, server1, server2.
  TcpRig acquire_tcp(const sim::DumbbellConfig& topology, const tcp::TcpProfile& profile,
                     snake::Rng& rng);

  /// DCCP counterpart of acquire_tcp.
  DccpRig acquire_dccp(const sim::DumbbellConfig& topology, snake::Rng& rng);

 private:
  struct TcpStacks;
  struct DccpStacks;

  /// Rebuilds the dumbbell if `topology` differs from the cached one
  /// (dropping every stack first — they hold references into it), otherwise
  /// resets it in place.
  void prepare_network(const sim::DumbbellConfig& topology);

  std::unique_ptr<sim::Dumbbell> net_;
  /// Arena-owned copy of the trial's profile: stacks and their endpoints
  /// keep pointers into this, so it must outlive them and stay at a stable
  /// address across trials.
  tcp::TcpProfile tcp_profile_;
  std::unique_ptr<TcpStacks> tcp_;
  std::unique_ptr<DccpStacks> dccp_;
};

}  // namespace snake::core
