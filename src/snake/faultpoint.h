// Deterministic fault injection for the campaign resilience layer.
//
// A long campaign must survive individual trials misbehaving — an event
// storm that never drains, a callback that stops advancing virtual time
// while burning wall clock, an exception thrown on a worker thread, a
// checkpoint write that fails. None of those paths can be exercised by
// normal strategies, so tests and benches compile in a FaultPlan: a set of
// seed-/key-driven rules that make specific trials fail in specific ways,
// exactly reproducibly.
//
// Zero hot-path cost when disabled: production code paths carry only a
// null-pointer check (`plan != nullptr`), and every rule decision is a pure
// function of (kind, key, attempt) — no clocks, no global RNG — so fault
// schedules are identical across runs and thread interleavings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/time.h"

namespace snake::sim {
class Scheduler;
}

namespace snake::core {

/// The degradation paths the resilience layer must prove out.
enum class FaultKind : std::uint8_t {
  kThrowInTrial,      ///< an event callback throws mid-scenario
  kEventStorm,        ///< self-rescheduling zero-delay event floods the queue
  kSerializeFailure,  ///< journal append fails (checkpoint write error)
  kClockStall,        ///< virtual time crawls while wall clock burns
};

constexpr std::size_t kFaultKindCount = 4;

const char* to_string(FaultKind kind);

/// Exception thrown by the throw-in-trial and serialize-failure sites.
struct FaultInjectedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One injection rule: fire `kind` for trials whose key (the strategy id)
/// satisfies key % modulus == remainder, on attempts below `attempts`.
/// attempts=1 models a transient fault (first try fails, the retry is
/// clean); kAllAttempts models a persistent one (the strategy ends up
/// quarantined).
struct FaultRule {
  FaultKind kind = FaultKind::kThrowInTrial;
  std::uint64_t modulus = 1;
  std::uint64_t remainder = 0;
  std::uint32_t attempts = kAllAttempts;

  static constexpr std::uint32_t kAllAttempts = 0xffffffffu;

  bool matches(FaultKind k, std::uint64_t key, std::uint32_t attempt) const {
    return kind == k && attempt < attempts && modulus != 0 && key % modulus == remainder;
  }
};

/// An immutable-after-setup set of rules shared by every executor. The only
/// mutable state is the per-kind fire counters, which are atomics used for
/// reporting and assertions — never for decisions.
class FaultPlan {
 public:
  void add(const FaultRule& rule) { rules_.push_back(rule); }

  /// Whether any rule fires for this (kind, key, attempt). Deterministic and
  /// thread-safe; bumps the kind's fire counter when it fires.
  bool should_fire(FaultKind kind, std::uint64_t key, std::uint32_t attempt = 0) const;

  /// Times should_fire returned true for `kind` (across all threads).
  std::uint64_t fires(FaultKind kind) const {
    return fires_[static_cast<std::size_t>(kind)].load(std::memory_order_relaxed);
  }

  bool empty() const { return rules_.empty(); }

 private:
  std::vector<FaultRule> rules_;
  mutable std::array<std::atomic<std::uint64_t>, kFaultKindCount> fires_{};
};

// --- Scenario-level actuators ----------------------------------------------
// Called by the scenario runner when the matching rule fires; each plants the
// degradation into the scheduler before run_until starts.

/// Event storm: schedules a callback that reschedules itself at the current
/// instant forever. Virtual time never advances past `after`; only an event
/// budget stops it.
void arm_event_storm(sim::Scheduler& scheduler, Duration after);

/// Clock stall: schedules a callback that sleeps ~1 ms of wall time, then
/// reschedules itself 1 us of virtual time later — the virtual clock crawls
/// while wall time burns, so only a wall-clock deadline stops it.
void arm_clock_stall(sim::Scheduler& scheduler, Duration after);

/// Throw-in-trial: schedules a callback that throws FaultInjectedError,
/// unwinding out of run_until through the scenario into the trial guard.
void arm_throw_in_trial(sim::Scheduler& scheduler, Duration after);

// --- Dist wire fault domain -------------------------------------------------
// Chaos injection for the coordinator<->worker transport (src/dist). The
// scenario faults above corrupt *trials*; these corrupt the *wire* the trial
// results travel on, so the fleet's recovery machinery — malformed-frame
// kills, shard requeue, supervised respawn — gets exercised against every
// byte-level failure a real network or a dying process can produce. Like
// FaultPlan, decisions are pure functions of (seed, fault, operation index):
// no clocks, no global RNG, zero cost on the send path when no plan is set
// (a single null-pointer check).

/// The wire degradations the fleet must survive.
enum class WireFault : std::uint8_t {
  kTornFrame,       ///< frame truncated mid-write (peer desyncs, then kills)
  kGarbageBytes,    ///< junk bytes injected between frames (bogus length prefix)
  kDuplicateFrame,  ///< frame transmitted twice (dedup at the receiver)
  kDelayFrame,      ///< frame held back, flushed ahead of the next send
  kStallHeartbeat,  ///< worker heartbeat sender skips beats (liveness timeout)
  kDieMidWrite,     ///< process _exits halfway through a frame write
};

constexpr std::size_t kWireFaultCount = 6;

const char* to_string(WireFault fault);

constexpr std::uint32_t wire_fault_bit(WireFault fault) {
  return 1u << static_cast<unsigned>(fault);
}
/// Every wire fault enabled at once (the chaos-soak configuration).
constexpr std::uint32_t kAllWireFaults = (1u << kWireFaultCount) - 1;
/// Faults that are only safe in a worker process: the coordinator must never
/// _exit mid-campaign, and only workers send heartbeats.
constexpr std::uint32_t kWorkerOnlyWireFaults =
    wire_fault_bit(WireFault::kDieMidWrite) | wire_fault_bit(WireFault::kStallHeartbeat);

/// Seed-keyed wire chaos schedule. Each enabled fault fires on roughly one in
/// `period` operations (frame sends / heartbeat ticks), chosen by hashing
/// (seed, fault, op) — deterministic for a given seed, independent across
/// fault kinds, reproducible from the seed a failing soak run prints. The
/// per-kind fire counters are atomics used for reporting only.
class WireFaultPlan {
 public:
  WireFaultPlan(std::uint64_t seed, std::uint32_t mask, std::uint32_t period)
      : seed_(seed), mask_(mask), period_(period) {}

  bool enabled() const { return mask_ != 0 && period_ != 0; }
  std::uint64_t seed() const { return seed_; }
  std::uint32_t mask() const { return mask_; }
  std::uint32_t period() const { return period_; }

  /// Whether `fault` fires on operation `op`. Pure function of
  /// (seed, fault, op); bumps the fault's fire counter when it fires.
  bool should_fire(WireFault fault, std::uint64_t op) const;

  /// Times should_fire returned true for `fault` (across all threads).
  std::uint64_t fires(WireFault fault) const {
    return fires_[static_cast<std::size_t>(fault)].load(std::memory_order_relaxed);
  }
  std::uint64_t total_fires() const;

  /// The same plan with worker-only faults stripped, for the coordinator's
  /// end of the socketpair.
  WireFaultPlan coordinator_side() const {
    return WireFaultPlan(seed_, mask_ & ~kWorkerOnlyWireFaults, period_);
  }

 private:
  std::uint64_t seed_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t period_ = 0;
  mutable std::array<std::atomic<std::uint64_t>, kWireFaultCount> fires_{};
};

}  // namespace snake::core
