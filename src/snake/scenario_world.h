// Internal: the live object graph of one scenario run — rig, proxy, apps —
// extracted from scenario.cpp so the snapshot layer (snake/snapshot.h) can
// keep a world alive across forked trials. run_scenario builds a world, runs
// the scheduler to the horizon, and finishes it; a snapshot session builds a
// world once, checkpoints it at attack injection states, and re-finishes it
// once per forked trial.
//
// Not installed API: include only from src/snake and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "apps/bulk_http.h"
#include "apps/iperf_dccp.h"
#include "apps/trace_replay.h"
#include "proxy/attack_proxy.h"
#include "snake/arena.h"
#include "snake/scenario.h"

namespace snake::core::detail {

/// Arms the trial watchdog and plants any scenario-level fault points before
/// the run starts.
void arm_run_guards(const ScenarioConfig& config, sim::Scheduler& scheduler);

/// Drives an initialized (or snapshot-restored) world's scheduler to `end`:
/// plain run_until, or — when config.early_exit — the quiescence cut via
/// run_until_quiescent (see ScenarioConfig::early_exit). Counts genuine cuts
/// under "scenario.early_exit_runs". Shared by run_scenario's drivers and
/// the snapshot layer's forked trials so both take the identical cut.
void drive_to_end(sim::Scheduler& scheduler, const ScenarioConfig& config, TimePoint end);

/// The TCP scenario graph. Members are declared in the exact construction
/// order of the former run_tcp locals so teardown order is preserved.
struct TcpWorld {
  ScenarioArena::TcpRig rig{};
  std::optional<proxy::AttackProxy> proxy;
  // Target-connection apps: exactly one pair is engaged per init, selected
  // by config.workload — bulk download (http1/wget1) or trace replay
  // (trace_server/trace_client). The competing connection (http2/wget2)
  // always runs bulk.
  std::optional<apps::BulkHttpServer> http1, http2;
  std::optional<apps::BulkHttpClient> wget1, wget2;
  std::shared_ptr<const trace::ReplayPlan> trace_plan;
  std::optional<apps::TraceReplayServer> trace_server;
  std::optional<apps::TraceReplayClient> trace_client;
  TimePoint end;

  /// Builds (or rebuilds, resetting the arena) the full graph for `config`
  /// and arms the run guards; the caller then drives the scheduler. Must not
  /// be called again once any snapshot of this world exists — snapshots hold
  /// cloned closures referencing the current graph objects.
  ///
  /// `after_proxy`, when set, runs right after the proxy is attached and
  /// armed, *before* the applications are constructed. App construction
  /// already moves packets through the proxy (the client's connect sends its
  /// SYN synchronously), so this is the only point where the snapshot
  /// layer's discovery hooks can see those time-zero state entries.
  void init(ScenarioArena& arena, const ScenarioConfig& config,
            const std::vector<strategy::Strategy>& attacks,
            const std::function<void(proxy::AttackProxy&)>& after_proxy = {});

  /// Harvests RunMetrics exactly as run_tcp did. Safe to call once per
  /// (from-zero or forked) run; tracker finalization is undone by the next
  /// restore().
  RunMetrics finish(const ScenarioConfig& config, bool attacked);

  /// Composite checkpoint of every piece of mutable world state. Move-only
  /// (the scheduler snapshot owns cloned callbacks).
  struct Snapshot {
    sim::Scheduler::Snapshot scheduler;
    std::vector<sim::Link::Snapshot> links;
    std::vector<std::uint64_t> node_packet_ids;
    tcp::TcpStack::Snapshot client1, client2, server1, server2;
    proxy::AttackProxy::Snapshot proxy;
    apps::BulkHttpServer::Snapshot http1, http2;
    apps::BulkHttpClient::Snapshot wget1, wget2;
    apps::TraceReplayServer::Snapshot trace_server;
    apps::TraceReplayClient::Snapshot trace_client;
  };

  /// Captures the world between two scheduler events. False when the
  /// scheduler state cannot be checkpointed (watchdog tripped, non-clonable
  /// armed callback).
  bool capture(Snapshot& out) const;

  /// Freezes the canonical endpoint counts. Call once, immediately after the
  /// last capture of the session: endpoints that exist at that point may be
  /// referenced by any snapshot and are never destroyed, only zombified;
  /// endpoints created later (during forked runs) are truncated on restore.
  void freeze();

  /// Rewinds the graph to `snap`. Ordering inside: truncate forked-run
  /// endpoints (their destructors cancel timers against the dying run's
  /// scheduler state) -> scheduler restore -> links/nodes/stacks/proxy/apps.
  /// Leaves the proxy unarmed; install strategies afterwards.
  void restore(const Snapshot& snap);

 private:
  std::vector<std::size_t> canonical_endpoints_;
};

/// The DCCP scenario graph; mirrors TcpWorld.
struct DccpWorld {
  ScenarioArena::DccpRig rig{};
  std::optional<proxy::AttackProxy> proxy;
  std::optional<apps::DccpIperfSink> sink1, sink2;
  std::optional<apps::DccpIperfSource> src1, src2;
  TimePoint end;

  void init(ScenarioArena& arena, const ScenarioConfig& config,
            const std::vector<strategy::Strategy>& attacks,
            const std::function<void(proxy::AttackProxy&)>& after_proxy = {});
  RunMetrics finish(const ScenarioConfig& config, bool attacked);

  struct Snapshot {
    sim::Scheduler::Snapshot scheduler;
    std::vector<sim::Link::Snapshot> links;
    std::vector<std::uint64_t> node_packet_ids;
    dccp::DccpStack::Snapshot client1, client2, server1, server2;
    proxy::AttackProxy::Snapshot proxy;
    apps::DccpIperfSink::Snapshot sink1, sink2;
    apps::DccpIperfSource::Snapshot src1, src2;
  };
  bool capture(Snapshot& out) const;
  void freeze();
  void restore(const Snapshot& snap);

 private:
  std::vector<std::size_t> canonical_endpoints_;
};

}  // namespace snake::core::detail
