#include "snake/scenario_world.h"

#include "obs/metrics.h"
#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "snake/faultpoint.h"
#include "statemachine/protocol_specs.h"

namespace snake::core::detail {

namespace {

constexpr std::uint16_t kHttpPort = 80;
constexpr std::uint16_t kIperfPort = 5001;

proxy::ProxyTargets make_targets(Protocol protocol) {
  using A = sim::DumbbellAddresses;
  proxy::ProxyTargets t;
  t.client_addr = A::kClient1;
  t.server_addr = A::kServer1;
  t.competing_client_addr = A::kClient2;
  t.competing_server_addr = A::kServer2;
  if (protocol == Protocol::kTcp) {
    t.protocol = sim::kProtoTcp;
    t.server_port = kHttpPort;
    t.competing_server_port = kHttpPort;
    t.competing_client_port_guess = 40000;  // our stacks allocate from 40000
  } else {
    t.protocol = sim::kProtoDccp;
    t.server_port = kIperfPort;
    t.competing_server_port = kIperfPort;
    t.competing_client_port_guess = 41000;
  }
  return t;
}

RunMetrics finish_metrics(proxy::AttackProxy& attack_proxy, TimePoint end) {
  RunMetrics m;
  m.client_observations = attack_proxy.tracker().client().observations();
  m.server_observations = attack_proxy.tracker().server().observations();
  m.client_state_stats = attack_proxy.tracker().client().finalize(end);
  m.server_state_stats = attack_proxy.tracker().server().finalize(end);
  m.proxy = attack_proxy.stats();
  return m;
}

/// Harvests the watchdog verdict after the run returned.
void finish_watchdog(RunMetrics& m, sim::Scheduler& scheduler, const ScenarioConfig& config) {
  sim::WatchdogTrip trip = scheduler.watchdog_trip();
  if (trip == sim::WatchdogTrip::kNone) return;
  m.aborted = true;
  m.abort_reason = sim::to_string(trip);
  if (config.metrics != nullptr) {
    ++config.metrics->counter("scenario.aborted_runs");
    ++config.metrics->counter(std::string("scenario.aborted_runs.") + m.abort_reason);
  }
}

/// Dumps the run's substrate counters into the configured registry (no-op
/// without one). Runs after the simulation finishes so the hot path carries
/// zero instrumentation cost.
void export_run_observability(const ScenarioConfig& config, sim::Dumbbell& net,
                              proxy::AttackProxy& attack_proxy, bool attacked) {
  if (config.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *config.metrics;
  ++reg.counter(attacked ? "scenario.attack_runs" : "scenario.baseline_runs");
  net.scheduler().export_metrics(reg);
  if (net.bottleneck_left_to_right() != nullptr)
    net.bottleneck_left_to_right()->export_metrics(reg);
  if (net.bottleneck_right_to_left() != nullptr)
    net.bottleneck_right_to_left()->export_metrics(reg);
  attack_proxy.export_metrics(reg);
}

}  // namespace

void arm_run_guards(const ScenarioConfig& config, sim::Scheduler& scheduler) {
  sim::WatchdogConfig watchdog;
  watchdog.max_events = config.event_budget;
  watchdog.wall_seconds = config.wall_limit_seconds;
  scheduler.arm_watchdog(watchdog);
  if (config.faults == nullptr) return;
  // Plant faults a moment into the run so connection setup has begun and the
  // degradation exercises a mid-trial state, not an empty scheduler.
  const Duration after = Duration::seconds(0.5);
  if (config.faults->should_fire(FaultKind::kEventStorm, config.fault_key,
                                 config.fault_attempt))
    arm_event_storm(scheduler, after);
  if (config.faults->should_fire(FaultKind::kClockStall, config.fault_key,
                                 config.fault_attempt))
    arm_clock_stall(scheduler, after);
  if (config.faults->should_fire(FaultKind::kThrowInTrial, config.fault_key,
                                 config.fault_attempt))
    arm_throw_in_trial(scheduler, after);
}

void drive_to_end(sim::Scheduler& scheduler, const ScenarioConfig& config, TimePoint end) {
  if (!config.early_exit) {
    scheduler.run_until(end);
    return;
  }
  scheduler.set_quiescence_horizon(end);
  bool cut = scheduler.run_until_quiescent(end);
  if (cut && config.metrics != nullptr)
    config.metrics->counter("scenario.early_exit_runs") += 1;
}

// ------------------------------------------------------------------ TcpWorld

void TcpWorld::init(ScenarioArena& arena, const ScenarioConfig& config,
                    const std::vector<strategy::Strategy>& attacks,
                    const std::function<void(proxy::AttackProxy&)>& after_proxy) {
  snake::Rng rng(config.seed);
  rig = arena.acquire_tcp(config.topology, config.tcp_profile, rng);
  sim::Dumbbell& net = *rig.net;

  proxy.emplace(net.client1(), packet::tcp_codec(), statemachine::tcp_state_machine(),
                make_targets(Protocol::kTcp), rng.fork());
  net.client1().set_filter(&*proxy);
  if (!attacks.empty()) proxy->set_strategies(attacks);
  if (config.inspector != nullptr) net.network().enable_trace();
  if (after_proxy) after_proxy(*proxy);

  // Construction order (target server, competing server, target client,
  // competing client) is part of the deterministic event sequence: the
  // clients push their first packets synchronously at build time.
  const bool trace_workload = config.workload == Workload::kTrace;
  Duration exit_after =
      Duration::seconds(config.test_duration.to_seconds() * config.client1_exit_fraction);
  http1.reset();
  wget1.reset();
  trace_server.reset();
  trace_client.reset();
  trace_plan.reset();
  if (trace_workload) {
    // Rebuild the plan from the trace text — a pure function, so every
    // worker (and every snapshot-forked replay) drives the same schedule. A
    // malformed trace degrades to an empty plan: deterministic zero-flow
    // runs rather than a mid-campaign throw (benches validate at load).
    trace::ReplayOptions opts;
    opts.max_flows = config.trace_max_flows;
    opts.seed = config.seed;
    opts.time_scale = config.trace_time_scale;
    std::optional<trace::ParsedTrace> parsed = trace::parse_trace(config.trace_text);
    auto plan = std::make_shared<trace::ReplayPlan>();
    if (parsed.has_value()) *plan = trace::build_replay_plan(*parsed, opts);
    trace_plan = std::move(plan);
    trace_server.emplace(*rig.server1, kHttpPort, trace_plan);
  } else {
    http1.emplace(*rig.server1, kHttpPort, config.download_bytes);
  }
  http2.emplace(*rig.server2, kHttpPort, config.download_bytes);
  if (trace_workload) {
    trace_client.emplace(*rig.client1, sim::DumbbellAddresses::kServer1, kHttpPort, trace_plan,
                         exit_after);
  } else {
    wget1.emplace(*rig.client1, sim::DumbbellAddresses::kServer1, kHttpPort, exit_after);
  }
  wget2.emplace(*rig.client2, sim::DumbbellAddresses::kServer2, kHttpPort);

  end = net.scheduler().now() + config.test_duration;
  arm_run_guards(config, net.scheduler());
}

RunMetrics TcpWorld::finish(const ScenarioConfig& config, bool attacked) {
  sim::Dumbbell& net = *rig.net;
  RunMetrics m = finish_metrics(*proxy, end);
  finish_watchdog(m, net.scheduler(), config);
  if (trace_client.has_value()) {
    m.target_bytes = trace_client->bytes_received();
    m.target_established = trace_client->established();
    m.target_reset = trace_client->reset();
  } else {
    m.target_bytes = wget1->bytes_received();
    m.target_established = wget1->established();
    m.target_reset = wget1->reset();
  }
  m.competing_bytes = wget2->bytes_received();
  m.competing_established = wget2->established();
  m.competing_reset = wget2->reset();
  m.server1_stuck_sockets = rig.server1->open_sockets();
  m.server2_stuck_sockets = rig.server2->open_sockets();
  m.server1_socket_states = rig.server1->socket_states();
  export_run_observability(config, net, *proxy, attacked);
  if (config.inspector != nullptr) config.inspector->on_run_complete(net, *proxy, m);
  return m;
}

bool TcpWorld::capture(Snapshot& out) const {
  sim::Dumbbell& net = *rig.net;
  if (!net.scheduler().capture(out.scheduler)) return false;
  out.links.clear();
  for (const auto& link : net.network().links()) out.links.push_back(link->capture());
  out.node_packet_ids.clear();
  for (const auto& node : net.network().nodes())
    out.node_packet_ids.push_back(node->next_packet_id());
  out.client1 = rig.client1->capture();
  out.client2 = rig.client2->capture();
  out.server1 = rig.server1->capture();
  out.server2 = rig.server2->capture();
  out.proxy = proxy->capture();
  if (trace_server.has_value()) {
    out.trace_server = trace_server->capture();
    out.trace_client = trace_client->capture();
  } else {
    out.http1 = http1->capture();
    out.wget1 = wget1->capture();
  }
  out.http2 = http2->capture();
  out.wget2 = wget2->capture();
  return true;
}

void TcpWorld::freeze() {
  canonical_endpoints_ = {rig.client1->endpoints().size(), rig.client2->endpoints().size(),
                          rig.server1->endpoints().size(), rig.server2->endpoints().size()};
}

void TcpWorld::restore(const Snapshot& snap) {
  sim::Dumbbell& net = *rig.net;
  // 1. Destroy endpoints created after the session's last capture (by a
  //    previous forked run): their destructors cancel timers, which must
  //    happen against the scheduler state those handles refer to.
  tcp::TcpStack* stacks[4] = {rig.client1, rig.client2, rig.server1, rig.server2};
  for (std::size_t i = 0; i < 4; ++i) stacks[i]->truncate_endpoints(canonical_endpoints_[i]);
  // 2. Scheduler: slot table, heap, clock, counters.
  net.scheduler().restore(snap.scheduler);
  // 3. Everything above the scheduler.
  for (std::size_t i = 0; i < snap.links.size(); ++i)
    net.network().links()[i]->restore(snap.links[i]);
  for (std::size_t i = 0; i < snap.node_packet_ids.size(); ++i)
    net.network().nodes()[i]->set_next_packet_id(snap.node_packet_ids[i]);
  rig.client1->restore(snap.client1);
  rig.client2->restore(snap.client2);
  rig.server1->restore(snap.server1);
  rig.server2->restore(snap.server2);
  proxy->restore(snap.proxy);
  if (trace_server.has_value()) {
    trace_server->restore(snap.trace_server);
    trace_client->restore(snap.trace_client);
  } else {
    http1->restore(snap.http1);
    wget1->restore(snap.wget1);
  }
  http2->restore(snap.http2);
  wget2->restore(snap.wget2);
}

// ----------------------------------------------------------------- DccpWorld

void DccpWorld::init(ScenarioArena& arena, const ScenarioConfig& config,
                     const std::vector<strategy::Strategy>& attacks,
                     const std::function<void(proxy::AttackProxy&)>& after_proxy) {
  snake::Rng rng(config.seed);
  rig = arena.acquire_dccp(config.topology, rng);
  sim::Dumbbell& net = *rig.net;

  proxy.emplace(net.client1(), packet::dccp_codec(), statemachine::dccp_state_machine(),
                make_targets(Protocol::kDccp), rng.fork());
  net.client1().set_filter(&*proxy);
  if (!attacks.empty()) proxy->set_strategies(attacks);
  if (config.inspector != nullptr) net.network().enable_trace();
  if (after_proxy) after_proxy(*proxy);

  dccp::DccpEndpointConfig accept_config;
  accept_config.ccid = config.dccp_ccid;
  sink1.emplace(*rig.server1, kIperfPort, accept_config);
  sink2.emplace(*rig.server2, kIperfPort, accept_config);
  apps::DccpIperfSource::Options opts;
  opts.offer_rate_pps = config.dccp_offer_rate_pps;
  opts.payload_bytes = config.dccp_payload_bytes;
  opts.duration =
      Duration::seconds(config.test_duration.to_seconds() * config.dccp_data_fraction);
  opts.tx_queue_packets = config.dccp_tx_queue_packets;
  opts.ccid = config.dccp_ccid;
  src1.emplace(*rig.client1, sim::DumbbellAddresses::kServer1, kIperfPort, opts);
  src2.emplace(*rig.client2, sim::DumbbellAddresses::kServer2, kIperfPort, opts);

  end = net.scheduler().now() + config.test_duration;
  arm_run_guards(config, net.scheduler());
}

RunMetrics DccpWorld::finish(const ScenarioConfig& config, bool attacked) {
  sim::Dumbbell& net = *rig.net;
  RunMetrics m = finish_metrics(*proxy, end);
  finish_watchdog(m, net.scheduler(), config);
  // "Since DCCP is not a reliable protocol, we measured performance based on
  // server goodput, or actual data received."
  m.target_bytes = sink1->goodput_bytes();
  m.competing_bytes = sink2->goodput_bytes();
  m.target_established = src1->established();
  m.competing_established = src2->established();
  m.target_reset = src1->reset();
  m.competing_reset = src2->reset();
  m.server1_stuck_sockets = rig.server1->open_sockets();
  m.server2_stuck_sockets = rig.server2->open_sockets();
  m.server1_socket_states = rig.server1->socket_states();
  export_run_observability(config, net, *proxy, attacked);
  if (config.inspector != nullptr) config.inspector->on_run_complete(net, *proxy, m);
  return m;
}

bool DccpWorld::capture(Snapshot& out) const {
  sim::Dumbbell& net = *rig.net;
  if (!net.scheduler().capture(out.scheduler)) return false;
  out.links.clear();
  for (const auto& link : net.network().links()) out.links.push_back(link->capture());
  out.node_packet_ids.clear();
  for (const auto& node : net.network().nodes())
    out.node_packet_ids.push_back(node->next_packet_id());
  out.client1 = rig.client1->capture();
  out.client2 = rig.client2->capture();
  out.server1 = rig.server1->capture();
  out.server2 = rig.server2->capture();
  out.proxy = proxy->capture();
  out.sink1 = sink1->capture();
  out.sink2 = sink2->capture();
  out.src1 = src1->capture();
  out.src2 = src2->capture();
  return true;
}

void DccpWorld::freeze() {
  canonical_endpoints_ = {rig.client1->endpoints().size(), rig.client2->endpoints().size(),
                          rig.server1->endpoints().size(), rig.server2->endpoints().size()};
}

void DccpWorld::restore(const Snapshot& snap) {
  sim::Dumbbell& net = *rig.net;
  dccp::DccpStack* stacks[4] = {rig.client1, rig.client2, rig.server1, rig.server2};
  for (std::size_t i = 0; i < 4; ++i) stacks[i]->truncate_endpoints(canonical_endpoints_[i]);
  net.scheduler().restore(snap.scheduler);
  for (std::size_t i = 0; i < snap.links.size(); ++i)
    net.network().links()[i]->restore(snap.links[i]);
  for (std::size_t i = 0; i < snap.node_packet_ids.size(); ++i)
    net.network().nodes()[i]->set_next_packet_id(snap.node_packet_ids[i]);
  rig.client1->restore(snap.client1);
  rig.client2->restore(snap.client2);
  rig.server1->restore(snap.server1);
  rig.server2->restore(snap.server2);
  proxy->restore(snap.proxy);
  sink1->restore(snap.sink1);
  sink2->restore(snap.sink2);
  src1->restore(snap.src1);
  src2->restore(snap.src2);
}

}  // namespace snake::core::detail
