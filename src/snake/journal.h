// Checkpoint/resume for campaigns: a JSONL trial journal.
//
// Executors append one line per *finished* strategy (completed or
// quarantined) through a shared, mutex-guarded sink. Because each line is a
// self-contained JSON document flushed at once, a killed campaign leaves a
// journal whose every complete line is valid — the loader simply ignores a
// truncated tail. A resumed campaign skips journaled strategies, replaying
// their recorded outcome *and* their recorded state-machine observations
// (the controller's feedback loop input), so the resumed run walks exactly
// the strategy sequence the uninterrupted run would have and reproduces its
// CampaignResult for equal seeds.
//
// This is the SNPSFuzzer idea — cheap mid-campaign state capture — realized
// without process snapshots: the journal *is* the campaign state, because
// every other input (topology, stacks, RNG streams) is derived
// deterministically from the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snake/detector.h"

namespace snake::core {

struct CampaignConfig;

/// Terminal state of one strategy's trial (after any retries).
enum class TrialVerdict : std::uint8_t {
  kCompleted,    ///< ran to a detection verdict (found or not)
  kAborted,      ///< final attempt cut off by the trial watchdog
  kErrored,      ///< final attempt threw; converted to an errored outcome
  kQuarantined,  ///< failed every attempt; excluded from results
};

const char* to_string(TrialVerdict verdict);

/// A deduplicated (state, packet type) send-observation — the part of a
/// run's tracker feedback the strategy generator consumes.
struct JournalObservation {
  std::string state;
  std::string packet_type;
  auto operator<=>(const JournalObservation&) const = default;
};

/// Everything the controller needs to treat a journaled strategy as done.
struct TrialRecord {
  std::string key;  ///< strategy::canonical_key of the trial's strategy
  TrialVerdict verdict = TrialVerdict::kCompleted;
  std::uint32_t attempts = 1;
  std::uint32_t aborted_attempts = 0;
  std::uint32_t errored_attempts = 0;
  std::string failure_reason;  ///< last abort/error reason ("" when clean)

  /// Detection payload, present when the strategy was found (detected and
  /// retest-confirmed).
  bool found = false;
  Detection detection;
  AttackClass cls = AttackClass::kTrueAttack;
  std::string signature;

  /// Send-observations from the successful attempt's run, replayed into the
  /// generator on resume so incremental strategy generation continues
  /// identically.
  std::vector<JournalObservation> client_obs;
  std::vector<JournalObservation> server_obs;
};

/// Thread-safe JSONL appender. The sink receives one complete line
/// (newline-terminated) per call — an fwrite to an append-mode FILE gives a
/// crash-tolerant checkpoint.
class TrialJournal {
 public:
  using Sink = std::function<void(std::string_view line)>;

  explicit TrialJournal(Sink sink) : sink_(std::move(sink)) {}

  /// Writes the header line identifying the campaign this journal belongs
  /// to. Call once on a fresh journal; resumed journals already carry one.
  void write_header(const CampaignConfig& config);

  /// Appends one finished trial. Thread-safe; may throw if the sink throws
  /// (the controller converts that into a journal_errors counter and keeps
  /// the campaign running — checkpointing is best-effort, results are not).
  void append(const TrialRecord& record);

  /// Appends one pre-rendered auxiliary JSON object as its own line (no
  /// validation, no trailing newline expected). The greybox controller
  /// checkpoints its search-pool state this way; the loader recognizes such
  /// lines by their schema tag and keeps the last one (see
  /// JournalSnapshot::search_pool_json) instead of counting them skipped.
  void append_raw(std::string_view json_object_line);

 private:
  std::mutex mutex_;
  Sink sink_;
};

/// Parsed journal: the campaign identity from the header plus every complete
/// trial line, keyed by canonical strategy key.
struct JournalSnapshot {
  std::string protocol;
  std::string implementation;
  std::uint64_t seed = 0;
  double detect_threshold = 0.5;
  double duration_seconds = 0.0;
  std::map<std::string, TrialRecord> trials;
  /// Raw text of the journal's last search-pool checkpoint line (schema
  /// "snake-search-pool/v1"), empty when the campaign wrote none. Kept
  /// opaque here — the search library owns the format and its (strict,
  /// fuzz-hardened) validation; resume correctness never depends on it
  /// because a resumed greybox campaign reconstructs the pool by
  /// deterministic replay.
  std::string search_pool_json;

  /// Whether this journal was recorded by a campaign with the same identity
  /// (protocol, implementation, seed, threshold, duration) — resuming across
  /// differing configs would silently mix incompatible outcomes.
  bool compatible_with(const CampaignConfig& config) const;
};

/// Parses a JSONL journal. Lines that fail to parse — including a truncated
/// final line from a killed run — are skipped; a missing/invalid header
/// yields nullopt. `skipped_lines`, when given, receives the ignored count.
std::optional<JournalSnapshot> load_journal(std::string_view text,
                                            std::size_t* skipped_lines = nullptr);

/// Writes one trial record as a JSON object — the journal line encoding,
/// also used verbatim by the dist wire protocol and the result cache so a
/// record survives any of the three round trips unchanged.
void write_json(obs::JsonWriter& w, const TrialRecord& record);

/// Parses write_json's encoding. nullopt on a line that is not a valid
/// record (missing key/verdict, or a found-record without its detection
/// payload).
std::optional<TrialRecord> trial_record_from_json(const obs::JsonValue& v);

/// Merges per-worker journals into one snapshot (coordinator side of the
/// crash-atomic multi-writer scheme: every worker appends to a private file,
/// nobody interleaves). Parts must agree on the campaign identity header —
/// a mismatched part is rejected (nullopt) rather than silently mixed.
/// Truncated tails and corrupt lines are skipped per part, summed into
/// `skipped_lines`; duplicate keys keep the first occurrence.
std::optional<JournalSnapshot> merge_journals(const std::vector<std::string_view>& parts,
                                              std::size_t* skipped_lines = nullptr);

/// Content-addressed campaign identity: a 64-bit FNV-1a over every config
/// field that can change a trial's outcome for a given canonical strategy
/// key — protocol, implementation profile, seed, durations, workload and
/// topology shape, detection threshold, retry/retest plumbing. Strategies
/// are *not* part of it (the cache keys trials by canonical_key under this
/// hash); neither is anything that only changes which strategies get tried
/// (generator config, max_strategies, executors, backend). Campaigns with a
/// fault plan get a distinct identity: injected faults perturb verdicts, and
/// memoizing them would poison real campaigns.
std::uint64_t campaign_identity_hash(const CampaignConfig& config);

}  // namespace snake::core
