// JSON wire encoding for RunMetrics (declared in scenario.h). Lives in its
// own TU so the simulation code in scenario.cpp keeps no serialization
// concerns; everything here must round-trip exactly (see scenario.h).
#include <string>

#include "obs/json.h"
#include "snake/scenario.h"

namespace snake::core {

namespace {

const char* to_string(statemachine::TriggerKind kind) {
  switch (kind) {
    case statemachine::TriggerKind::kSend: return "send";
    case statemachine::TriggerKind::kReceive: return "receive";
    case statemachine::TriggerKind::kTimeout: return "timeout";
  }
  return "?";
}

std::optional<statemachine::TriggerKind> trigger_from_string(const std::string& s) {
  if (s == "send") return statemachine::TriggerKind::kSend;
  if (s == "receive") return statemachine::TriggerKind::kReceive;
  if (s == "timeout") return statemachine::TriggerKind::kTimeout;
  return std::nullopt;
}

std::optional<std::uint64_t> u64_of(const obs::JsonValue& v) {
  if (!v.is_number()) return std::nullopt;
  double d = v.num_v;
  if (!(d >= 0.0) || d >= 18446744073709551616.0) return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

std::uint64_t u64_field(const obs::JsonValue& obj, const char* key,
                        std::uint64_t fallback) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return u64_of(*v).value_or(fallback);
}

bool bool_field(const obs::JsonValue& obj, const char* key, bool fallback) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->bool_v : fallback;
}

std::string str_field(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->str_v : std::string();
}

void write_observations(obs::JsonWriter& w, const char* key,
                        const std::vector<statemachine::EndpointTracker::Observation>& obs) {
  w.key(key).begin_array();
  for (const auto& o : obs) {
    w.begin_array();
    w.value(o.state);
    w.value(o.packet_type);
    w.value(to_string(o.direction));
    w.end_array();
  }
  w.end_array();
}

bool read_observations(const obs::JsonValue* v,
                       std::vector<statemachine::EndpointTracker::Observation>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->reserve(v->array_v.size());
  for (const obs::JsonValue& entry : v->array_v) {
    if (!entry.is_array() || entry.array_v.size() != 3) return false;
    const obs::JsonValue& state = entry.array_v[0];
    const obs::JsonValue& type = entry.array_v[1];
    const obs::JsonValue& dir = entry.array_v[2];
    if (!state.is_string() || !type.is_string() || !dir.is_string()) return false;
    auto kind = trigger_from_string(dir.str_v);
    if (!kind.has_value()) return false;
    out->push_back({state.str_v, type.str_v, *kind});
  }
  return true;
}

void write_type_counts(obs::JsonWriter& w, const char* key,
                       const std::map<std::string, std::uint64_t>& counts) {
  w.key(key).begin_object();
  for (const auto& [type, n] : counts) w.key(type).value(n);
  w.end_object();
}

void write_state_stats(obs::JsonWriter& w, const char* key,
                       const std::map<std::string, statemachine::StateStats>& stats) {
  w.key(key).begin_object();
  for (const auto& [state, s] : stats) {
    w.key(state).begin_object();
    w.key("visits").value(s.visits);
    w.key("total_time_ns").value(s.total_time.ns());
    write_type_counts(w, "sent_by_type", s.sent_by_type);
    write_type_counts(w, "received_by_type", s.received_by_type);
    w.end_object();
  }
  w.end_object();
}

bool read_type_counts(const obs::JsonValue& obj, const char* key,
                      std::map<std::string, std::uint64_t>* out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  for (const auto& [type, n] : v->object_v) {
    auto count = u64_of(n);
    if (!count.has_value()) return false;
    (*out)[type] = *count;
  }
  return true;
}

bool read_state_stats(const obs::JsonValue& obj, const char* key,
                      std::map<std::string, statemachine::StateStats>* out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  for (const auto& [state, entry] : v->object_v) {
    if (!entry.is_object()) return false;
    statemachine::StateStats s;
    s.visits = u64_field(entry, "visits", 0);
    const obs::JsonValue* ns = entry.find("total_time_ns");
    if (ns == nullptr || !ns->is_number()) return false;
    s.total_time = Duration::nanos(static_cast<std::int64_t>(ns->num_v));
    if (!read_type_counts(entry, "sent_by_type", &s.sent_by_type)) return false;
    if (!read_type_counts(entry, "received_by_type", &s.received_by_type)) return false;
    (*out)[state] = std::move(s);
  }
  return true;
}

}  // namespace

void write_json(obs::JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.key("target_bytes").value(m.target_bytes);
  w.key("competing_bytes").value(m.competing_bytes);
  w.key("target_established").value(m.target_established);
  w.key("competing_established").value(m.competing_established);
  w.key("target_reset").value(m.target_reset);
  w.key("competing_reset").value(m.competing_reset);
  w.key("server1_stuck_sockets").value(static_cast<std::uint64_t>(m.server1_stuck_sockets));
  w.key("server2_stuck_sockets").value(static_cast<std::uint64_t>(m.server2_stuck_sockets));
  w.key("server1_socket_states").begin_object();
  for (const auto& [state, n] : m.server1_socket_states) w.key(state).value(n);
  w.end_object();
  write_observations(w, "client_observations", m.client_observations);
  write_observations(w, "server_observations", m.server_observations);
  write_state_stats(w, "client_state_stats", m.client_state_stats);
  write_state_stats(w, "server_state_stats", m.server_state_stats);
  w.key("proxy").begin_object();
  w.key("intercepted").value(m.proxy.intercepted);
  w.key("matched").value(m.proxy.matched);
  w.key("dropped").value(m.proxy.dropped);
  w.key("duplicates_created").value(m.proxy.duplicates_created);
  w.key("delayed").value(m.proxy.delayed);
  w.key("batched").value(m.proxy.batched);
  w.key("reflected").value(m.proxy.reflected);
  w.key("modified").value(m.proxy.modified);
  w.key("injected").value(m.proxy.injected);
  w.end_object();
  w.key("aborted").value(m.aborted);
  w.key("abort_reason").value(m.abort_reason);
  w.end_object();
}

std::optional<RunMetrics> run_metrics_from_json(const obs::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  RunMetrics m;
  m.target_bytes = u64_field(v, "target_bytes", 0);
  m.competing_bytes = u64_field(v, "competing_bytes", 0);
  m.target_established = bool_field(v, "target_established", false);
  m.competing_established = bool_field(v, "competing_established", false);
  m.target_reset = bool_field(v, "target_reset", false);
  m.competing_reset = bool_field(v, "competing_reset", false);
  m.server1_stuck_sockets = static_cast<std::size_t>(u64_field(v, "server1_stuck_sockets", 0));
  m.server2_stuck_sockets = static_cast<std::size_t>(u64_field(v, "server2_stuck_sockets", 0));
  if (const obs::JsonValue* states = v.find("server1_socket_states");
      states != nullptr && states->is_object())
    for (const auto& [state, n] : states->object_v) {
      if (!n.is_number()) return std::nullopt;
      m.server1_socket_states[state] = static_cast<int>(n.num_v);
    }
  if (!read_observations(v.find("client_observations"), &m.client_observations))
    return std::nullopt;
  if (!read_observations(v.find("server_observations"), &m.server_observations))
    return std::nullopt;
  if (!read_state_stats(v, "client_state_stats", &m.client_state_stats))
    return std::nullopt;
  if (!read_state_stats(v, "server_state_stats", &m.server_state_stats))
    return std::nullopt;
  const obs::JsonValue* proxy = v.find("proxy");
  if (proxy == nullptr || !proxy->is_object()) return std::nullopt;
  m.proxy.intercepted = u64_field(*proxy, "intercepted", 0);
  m.proxy.matched = u64_field(*proxy, "matched", 0);
  m.proxy.dropped = u64_field(*proxy, "dropped", 0);
  m.proxy.duplicates_created = u64_field(*proxy, "duplicates_created", 0);
  m.proxy.delayed = u64_field(*proxy, "delayed", 0);
  m.proxy.batched = u64_field(*proxy, "batched", 0);
  m.proxy.reflected = u64_field(*proxy, "reflected", 0);
  m.proxy.modified = u64_field(*proxy, "modified", 0);
  m.proxy.injected = u64_field(*proxy, "injected", 0);
  m.aborted = bool_field(v, "aborted", false);
  m.abort_reason = str_field(v, "abort_reason");
  return m;
}

}  // namespace snake::core
