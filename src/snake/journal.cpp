#include "snake/journal.h"

#include <cmath>
#include <cstring>

#include "obs/json.h"
#include "search/search.h"
#include "snake/controller.h"

namespace snake::core {

namespace {

constexpr const char* kJournalSchema = "snake-trial-journal/v1";

void write_observations(obs::JsonWriter& w, const char* key,
                        const std::vector<JournalObservation>& obs_list) {
  w.key(key).begin_array();
  for (const JournalObservation& o : obs_list) {
    w.begin_array();
    w.value(o.state);
    w.value(o.packet_type);
    w.end_array();
  }
  w.end_array();
}

std::vector<JournalObservation> read_observations(const obs::JsonValue& v) {
  std::vector<JournalObservation> out;
  if (!v.is_array()) return out;
  for (const obs::JsonValue& pair : v.array_v) {
    if (!pair.is_array() || pair.array_v.size() != 2) continue;
    if (!pair.array_v[0].is_string() || !pair.array_v[1].is_string()) continue;
    out.push_back(JournalObservation{pair.array_v[0].str_v, pair.array_v[1].str_v});
  }
  return out;
}

std::optional<TrialVerdict> verdict_from_string(const std::string& s) {
  if (s == "completed") return TrialVerdict::kCompleted;
  if (s == "aborted") return TrialVerdict::kAborted;
  if (s == "errored") return TrialVerdict::kErrored;
  if (s == "quarantined") return TrialVerdict::kQuarantined;
  return std::nullopt;
}

std::optional<AttackClass> class_from_string(const std::string& s) {
  if (s == "on-path") return AttackClass::kOnPath;
  if (s == "false-positive") return AttackClass::kFalsePositive;
  if (s == "true-attack") return AttackClass::kTrueAttack;
  return std::nullopt;
}

std::uint64_t u64_field(const obs::JsonValue& obj, const char* key, std::uint64_t fallback) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  // Range-check before converting: casting a negative / huge / NaN double to
  // an unsigned integer is undefined behaviour (fuzz-found via UBSan's
  // float-cast-overflow on hand-corrupted journal lines).
  double d = v->num_v;
  if (!(d >= 0.0) || d >= 18446744073709551616.0) return fallback;  // !(>=0) catches NaN
  return static_cast<std::uint64_t>(d);
}

std::string str_field(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->str_v : std::string();
}

bool bool_field(const obs::JsonValue& obj, const char* key, bool fallback) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->bool_v : fallback;
}

double num_field(const obs::JsonValue& obj, const char* key, double fallback) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr ? v->number_or(fallback) : fallback;
}

}  // namespace

void write_json(obs::JsonWriter& w, const TrialRecord& record) {
  w.begin_object();
  w.key("key").value(record.key);
  w.key("verdict").value(to_string(record.verdict));
  w.key("attempts").value(static_cast<std::uint64_t>(record.attempts));
  w.key("aborted_attempts").value(static_cast<std::uint64_t>(record.aborted_attempts));
  w.key("errored_attempts").value(static_cast<std::uint64_t>(record.errored_attempts));
  w.key("reason").value(record.failure_reason);
  w.key("found").value(record.found);
  if (record.found) {
    w.key("class").value(to_string(record.cls));
    w.key("signature").value(record.signature);
    w.key("detection");
    write_json(w, record.detection);
  }
  write_observations(w, "client_obs", record.client_obs);
  write_observations(w, "server_obs", record.server_obs);
  w.end_object();
}

std::optional<TrialRecord> trial_record_from_json(const obs::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  TrialRecord rec;
  rec.key = str_field(doc, "key");
  if (rec.key.empty()) return std::nullopt;
  auto verdict = verdict_from_string(str_field(doc, "verdict"));
  if (!verdict.has_value()) return std::nullopt;
  rec.verdict = *verdict;
  rec.attempts = static_cast<std::uint32_t>(u64_field(doc, "attempts", 1));
  rec.aborted_attempts = static_cast<std::uint32_t>(u64_field(doc, "aborted_attempts", 0));
  rec.errored_attempts = static_cast<std::uint32_t>(u64_field(doc, "errored_attempts", 0));
  rec.failure_reason = str_field(doc, "reason");
  rec.found = bool_field(doc, "found", false);
  if (rec.found) {
    auto cls = class_from_string(str_field(doc, "class"));
    if (!cls.has_value()) return std::nullopt;
    rec.cls = *cls;
    rec.signature = str_field(doc, "signature");
    const obs::JsonValue* det = doc.find("detection");
    if (det == nullptr || !det->is_object()) return std::nullopt;
    rec.detection = detection_from_json(*det);
  }
  if (const obs::JsonValue* c = doc.find("client_obs"); c != nullptr)
    rec.client_obs = read_observations(*c);
  if (const obs::JsonValue* s = doc.find("server_obs"); s != nullptr)
    rec.server_obs = read_observations(*s);
  return rec;
}

const char* to_string(TrialVerdict verdict) {
  switch (verdict) {
    case TrialVerdict::kCompleted: return "completed";
    case TrialVerdict::kAborted: return "aborted";
    case TrialVerdict::kErrored: return "errored";
    case TrialVerdict::kQuarantined: return "quarantined";
  }
  return "?";
}

void TrialJournal::write_header(const CampaignConfig& config) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kJournalSchema);
  w.key("protocol").value(to_string(config.scenario.protocol));
  w.key("implementation")
      .value(config.scenario.protocol == Protocol::kTcp ? config.scenario.tcp_profile.name
                                                        : "linux-3.13");
  w.key("seed").value(config.scenario.seed);
  w.key("detect_threshold").value(config.detect_threshold);
  w.key("duration_seconds").value(config.scenario.test_duration.to_seconds());
  w.end_object();
  std::string line = w.take();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  sink_(line);
}

void TrialJournal::append(const TrialRecord& record) {
  obs::JsonWriter w;
  write_json(w, record);
  std::string line = w.take();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  sink_(line);
}

void TrialJournal::append_raw(std::string_view json_object_line) {
  std::string line(json_object_line);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  sink_(line);
}

bool JournalSnapshot::compatible_with(const CampaignConfig& config) const {
  const std::string impl = config.scenario.protocol == Protocol::kTcp
                               ? config.scenario.tcp_profile.name
                               : "linux-3.13";
  return protocol == to_string(config.scenario.protocol) && implementation == impl &&
         seed == config.scenario.seed &&
         std::abs(detect_threshold - config.detect_threshold) < 1e-12 &&
         std::abs(duration_seconds - config.scenario.test_duration.to_seconds()) < 1e-9;
}

std::optional<JournalSnapshot> load_journal(std::string_view text,
                                            std::size_t* skipped_lines) {
  JournalSnapshot snap;
  if (skipped_lines != nullptr) *skipped_lines = 0;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    // A journal line is only trustworthy once its newline hit the disk; an
    // unterminated tail is the signature of a killed writer — skip it.
    bool complete = nl != std::string_view::npos;
    std::string_view line = complete ? text.substr(pos, nl - pos) : text.substr(pos);
    pos = complete ? nl + 1 : text.size();
    if (line.empty()) continue;
    std::optional<obs::JsonValue> doc = complete ? obs::parse_json(line) : std::nullopt;
    if (!doc.has_value() || !doc->is_object()) {
      if (skipped_lines != nullptr) ++*skipped_lines;
      continue;
    }
    if (!have_header) {
      // First parseable line must be the header.
      const obs::JsonValue* schema = doc->find("schema");
      if (schema == nullptr || schema->str_v != kJournalSchema) return std::nullopt;
      snap.protocol = str_field(*doc, "protocol");
      snap.implementation = str_field(*doc, "implementation");
      snap.seed = u64_field(*doc, "seed", 0);
      snap.detect_threshold = num_field(*doc, "detect_threshold", 0.5);
      snap.duration_seconds = num_field(*doc, "duration_seconds", 0.0);
      have_header = true;
      continue;
    }
    // Search-pool checkpoint lines ride the same journal. Keep the raw text
    // of the last one (later checkpoints supersede earlier ones); the search
    // library validates it, this loader only recognizes it.
    if (const obs::JsonValue* schema = doc->find("schema");
        schema != nullptr && schema->is_string() &&
        schema->str_v == search::kPoolStateSchema) {
      snap.search_pool_json.assign(line.data(), line.size());
      continue;
    }
    std::optional<TrialRecord> rec = trial_record_from_json(*doc);
    if (!rec.has_value()) {
      if (skipped_lines != nullptr) ++*skipped_lines;
      continue;
    }
    snap.trials[rec->key] = std::move(*rec);
  }
  if (!have_header) return std::nullopt;
  return snap;
}

std::optional<JournalSnapshot> merge_journals(const std::vector<std::string_view>& parts,
                                              std::size_t* skipped_lines) {
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::optional<JournalSnapshot> merged;
  for (std::string_view part : parts) {
    std::size_t skipped = 0;
    std::optional<JournalSnapshot> snap = load_journal(part, &skipped);
    if (skipped_lines != nullptr) *skipped_lines += skipped;
    if (!snap.has_value()) return std::nullopt;
    if (!merged.has_value()) {
      merged = std::move(snap);
      continue;
    }
    const bool same_identity =
        merged->protocol == snap->protocol &&
        merged->implementation == snap->implementation && merged->seed == snap->seed &&
        std::abs(merged->detect_threshold - snap->detect_threshold) < 1e-12 &&
        std::abs(merged->duration_seconds - snap->duration_seconds) < 1e-9;
    if (!same_identity) return std::nullopt;
    for (auto& [key, rec] : snap->trials) merged->trials.try_emplace(key, std::move(rec));
    if (merged->search_pool_json.empty())
      merged->search_pool_json = std::move(snap->search_pool_json);
  }
  return merged;
}

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void b(bool v) { u64(v ? 1 : 0); }
};

}  // namespace

std::uint64_t campaign_identity_hash(const CampaignConfig& config) {
  const ScenarioConfig& s = config.scenario;
  Fnv1a h;
  h.str("snake-campaign-identity/v1");
  h.str(to_string(s.protocol));
  h.str(s.protocol == Protocol::kTcp ? s.tcp_profile.name : "linux-3.13");
  h.u64(s.seed);
  h.i64(s.test_duration.ns());
  h.u64(s.download_bytes);
  h.f64(s.client1_exit_fraction);
  h.f64(s.dccp_offer_rate_pps);
  h.u64(s.dccp_payload_bytes);
  h.f64(s.dccp_data_fraction);
  h.u64(s.dccp_tx_queue_packets);
  h.i64(s.dccp_ccid);
  h.f64(s.topology.access_rate_bps);
  h.i64(s.topology.access_delay.ns());
  h.u64(s.topology.access_queue_packets);
  h.f64(s.topology.bottleneck_rate_bps);
  h.i64(s.topology.bottleneck_delay.ns());
  h.u64(s.topology.bottleneck_queue_packets);
  h.u64(static_cast<std::uint64_t>(s.topology.bottleneck_drop_policy));
  h.u64(s.event_budget);
  h.f64(s.wall_limit_seconds);
  h.b(s.faults != nullptr);
  // Trace-replay workloads fold the full workload definition in; the bulk
  // workload appends nothing so historic identities are unchanged.
  if (s.workload == Workload::kTrace) {
    h.str("workload=trace");
    h.str(s.trace_text);
    h.u64(s.trace_max_flows);
    h.f64(s.trace_time_scale);
  }
  h.f64(config.detect_threshold);
  h.u64(config.retest_seed_offset);
  h.u64(config.trial_attempts);
  h.u64(config.retry_seed_offset);
  return h.h;
}

}  // namespace snake::core
