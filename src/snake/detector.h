// Attack detection and post-hoc classification.
//
// Detection mirrors the paper's success criterion: "strategies that result
// in an increase or decrease in achieved throughput of at least 50% compared
// to the non-attack case or that cause the server-side socket to not be
// released normally after the connection is closed."
//
// Classification automates the paper's manual analysis:
//  - on-path: strategies only a man-in-the-middle could perform, or that
//    trivially break the attacker's own connection ("modifying the source or
//    destination ports or the header size do prevent a connection from being
//    established, but ... a malicious client could simply not initiate a
//    connection");
//  - false positives: hitseqwindow strategies whose performance impact comes
//    from injection volume rather than an actual in-window hit — the paper
//    inspects packet captures; we check whether the targeted connection was
//    actually reset.
#pragma once

#include <string>
#include <vector>

#include "packet/header_format.h"
#include "snake/scenario.h"
#include "strategy/strategy.h"

namespace snake::obs {
class JsonWriter;
struct JsonValue;
}

namespace snake::core {

struct Detection {
  bool is_attack = false;
  std::vector<std::string> reasons;

  // Throughput relative to baseline (1.0 = unchanged).
  double target_ratio = 1.0;
  double competing_ratio = 1.0;
  bool resource_exhaustion = false;
};

/// Compares a strategy run against the non-attack baseline.
Detection detect(const RunMetrics& baseline, const RunMetrics& run,
                 double threshold = 0.5);

/// Writes the detection as one JSON object. The field names are the ones the
/// trial journal has always used (is_attack / target_ratio / competing_ratio
/// / resource_exhaustion / reasons) — journal lines, campaign reports, the
/// dist wire protocol and the result cache all share this encoding, and it
/// round-trips exactly through detection_from_json (the JSON writer renders
/// doubles round-trippably).
void write_json(obs::JsonWriter& w, const Detection& d);

/// Parses write_json's encoding; missing fields keep their defaults (a
/// pre-existing journal tolerance this inherits).
Detection detection_from_json(const obs::JsonValue& v);

/// Scalar severity of a detection, used to rank strategies and to decide
/// whether a combined strategy beats its components: resource exhaustion
/// dominates, then the largest relative throughput deviation.
double impact_score(const Detection& detection);

enum class AttackClass {
  kOnPath,         ///< excluded: requires on-path capability / trivially self-harming
  kFalsePositive,  ///< hitseqwindow volume artifact
  kTrueAttack,
};

const char* to_string(AttackClass cls);

/// Classifies a *detected* strategy.
AttackClass classify(const strategy::Strategy& s, const packet::HeaderFormat& format,
                     const Detection& detection, const RunMetrics& run);

/// Signature used to fold functionally-identical strategies into unique
/// attacks ("many of these strategies are functionally the same attack, just
/// performed on a different field or with a different value"). Strategies
/// fold by mechanism (action, direction, field kind / packet type) and by
/// observed effect (reset, resource exhaustion, establishment prevention,
/// throughput shift) — the automated stand-in for the paper's manual
/// "functionally the same attack" analysis. `threshold` must match the one
/// given to detect(): the effect grouping uses the same ratio cut-offs, so
/// a detected attack always lands in a concrete effect class.
std::string attack_signature(const strategy::Strategy& s, const packet::HeaderFormat& format,
                             const Detection& detection, const RunMetrics& run,
                             double threshold = 0.5);

}  // namespace snake::core
