// Snapshot-forked trial execution — the reproduction of the paper's executor
// trick of restoring VM snapshots instead of rebooting the testbed: "we use
// the snapshot feature ... to revert the VMs to a clean state" — applied one
// level deeper. For a fixed (config seed, topology), every kStateBased trial
// replays the exact same prefix of the simulation up to the first moment its
// strategy can act (the first entry of the targeted protocol state). A
// SnapshotSession runs that prefix once, checkpoints the full world at every
// state-entry boundary, and each subsequent trial forks from the checkpoint
// instead of re-simulating from t=0.
//
// Correctness contract: a forked trial must be *bit-identical* to the same
// trial replayed from zero (the distributed backend's cross-process
// determinism check and the result cache both depend on it). The store
// therefore only serves configurations it can prove safe — everything else
// returns nullopt and the caller falls back to plain run_scenario:
//
//   - any non-state-based strategy component (packet-index and time-window
//     matches can act before any state entry);
//   - a target state that is the watched endpoint's *initial* state (the
//     proxy arms such strategies immediately at t=0; the discovery pass only
//     observes entries, so the fork point would be too late);
//   - fault injection or a run inspector on the config (faults perturb the
//     prefix; inspectors need the packet trace, which snapshots don't carry);
//   - a session whose discovery or capture failed (watchdog trip,
//     non-clonable callback).
//
// Not installed API: include only from src/snake, src/dist, tests, bench.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "snake/arena.h"
#include "snake/scenario.h"
#include "snake/scenario_world.h"

namespace snake::core {

/// One prepared fork source: the frozen world of one ScenarioConfig seed,
/// with a checkpoint at every distinct first-entry event boundary observed
/// during an unarmed discovery run.
///
/// The session owns a private ScenarioArena: its snapshots hold cloned
/// closures referencing the arena's live network/stack objects, so the world
/// must never be reset or re-initialised once the first checkpoint exists.
/// (Fallback trials run in the executor's own arena, never in this one.)
class SnapshotSession {
 public:
  /// Runs discovery (pass 1, unarmed, enter-hooks installed) and capture
  /// (pass 2, re-run to each discovered boundary). On any failure the
  /// session is marked bad and serve() always declines.
  explicit SnapshotSession(const ScenarioConfig& config);
  ~SnapshotSession();

  SnapshotSession(const SnapshotSession&) = delete;
  SnapshotSession& operator=(const SnapshotSession&) = delete;

  bool bad() const { return bad_; }

  /// Serves one trial from the nearest checkpoint at or before the first
  /// moment `attacks` can act, runs the tail live, and returns its metrics.
  /// nullopt when the session is bad or the request is not servable (the
  /// caller must then run the trial from zero). `config` must be the same
  /// scenario the session was built from (same seed); only its metrics /
  /// bookkeeping fields may differ.
  std::optional<RunMetrics> serve(const ScenarioConfig& config,
                                  const std::vector<strategy::Strategy>& attacks);

  /// Snapshots held (one per distinct first-entry boundary, plus t=0).
  std::size_t snapshot_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool bad_ = false;
};

/// Campaign-level front end: keys session pools by config seed, applies the
/// eligibility gates, and (in selfcheck mode) differentially verifies every
/// forked run against a plain replay.
///
/// Thread-safe and designed to be *shared by every executor of a campaign*
/// (one store per ThreadBackend / worker process instead of one per
/// executor thread): a session is the expensive part — two full prefix runs
/// plus a resident frozen world — and per-executor stores built N identical
/// copies of it. A session serves one trial at a time (serve mutates its
/// world), so the store keeps a small per-seed pool: an executor borrows an
/// idle session, or triggers a build (outside the lock, concurrently with
/// other executors' trials) while the pool is below max_sessions_per_seed,
/// or — when every session is busy and the pool is full — gets nullopt and
/// falls back to a from-zero run. Falling back is always correct (forked ==
/// from-zero, bit for bit), so contention degrades only wall-clock, never
/// results. The store must outlive any trial it serves and is scoped to one
/// campaign: sessions are keyed by seed only, so reusing a store across
/// campaigns with different scenarios would serve stale worlds.
class SnapshotStore {
 public:
  SnapshotStore();
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// When on, every forked run is re-executed from zero in a private verify
  /// arena and the two RunMetrics JSON encodings are compared byte for byte.
  /// A mismatch counts a violation and the plain result wins. (Testing and
  /// benchmarking aid; doubles — and serializes — every served trial.)
  void set_selfcheck(bool on) { selfcheck_ = on; }
  std::uint64_t selfcheck_violations() const;

  /// Cap on resident sessions per seed (default 2). More sessions = more
  /// concurrent forked trials but a full frozen world of RSS each; past the
  /// cap, contended trials fall back to from-zero runs. Not thread-safe;
  /// set before sharing the store.
  void set_max_sessions_per_seed(std::size_t cap);

  /// Runs one trial via snapshot forking when eligible. nullopt = not
  /// eligible / session bad / pool contended; the caller runs the trial from
  /// zero itself. Counters (snapshot.forked_runs, snapshot.fallback_runs,
  /// snapshot.sessions_built, snapshot.pool_exhausted,
  /// snapshot.selfcheck_violations) and the snapshot.session_build_seconds
  /// stage timer land in `config.metrics` when set.
  std::optional<RunMetrics> run_trial(const ScenarioConfig& config,
                                      const std::vector<strategy::Strategy>& attacks);

  /// The eligibility predicate alone (exposed for tests).
  static bool eligible(const ScenarioConfig& config,
                       const std::vector<strategy::Strategy>& attacks);

 private:
  struct SeedPool;

  SnapshotSession* acquire(std::uint64_t seed, const ScenarioConfig& config);
  void release(std::uint64_t seed, SnapshotSession* session);

  mutable std::mutex mutex_;  ///< guards pools_ and each pool's bookkeeping
  std::map<std::uint64_t, std::unique_ptr<SeedPool>> pools_;
  std::size_t max_sessions_per_seed_ = 2;

  std::mutex selfcheck_mutex_;  ///< serializes verify-arena replays
  std::optional<ScenarioArena> verify_arena_;  ///< selfcheck replays only
  bool selfcheck_ = false;
  std::uint64_t violations_ = 0;  ///< guarded by selfcheck_mutex_
};

}  // namespace snake::core
