#include "snake/scenario.h"

#include "obs/metrics.h"
#include "snake/arena.h"
#include "snake/scenario_world.h"

namespace snake::core {

const char* to_string(Protocol protocol) {
  return protocol == Protocol::kTcp ? "tcp" : "dccp";
}

const char* to_string(Workload workload) {
  return workload == Workload::kBulk ? "bulk" : "trace";
}

namespace {

// The scenario bodies (graph construction, run, metric harvest) live in
// scenario_world.cpp so the snapshot layer can keep a world alive across
// forked trials; these thin drivers preserve run_scenario's exact behaviour.

RunMetrics run_tcp(ScenarioArena& arena, const ScenarioConfig& config,
                   const std::vector<strategy::Strategy>& attacks) {
  obs::ScopedTimer run_timer(config.metrics, "scenario.run_seconds");
  detail::TcpWorld world;
  world.init(arena, config, attacks);
  detail::drive_to_end(world.rig.net->scheduler(), config, world.end);
  return world.finish(config, !attacks.empty());
}

RunMetrics run_dccp(ScenarioArena& arena, const ScenarioConfig& config,
                    const std::vector<strategy::Strategy>& attacks) {
  obs::ScopedTimer run_timer(config.metrics, "scenario.run_seconds");
  detail::DccpWorld world;
  world.init(arena, config, attacks);
  detail::drive_to_end(world.rig.net->scheduler(), config, world.end);
  return world.finish(config, !attacks.empty());
}

}  // namespace

RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks) {
  return config.protocol == Protocol::kTcp ? run_tcp(arena, config, attacks)
                                           : run_dccp(arena, config, attacks);
}

RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack) {
  std::vector<strategy::Strategy> attacks;
  if (attack.has_value()) attacks.push_back(*attack);
  return run_scenario(arena, config, attacks);
}

RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks) {
  ScenarioArena arena;
  return run_scenario(arena, config, attacks);
}

RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack) {
  ScenarioArena arena;
  return run_scenario(arena, config, attack);
}

}  // namespace snake::core
