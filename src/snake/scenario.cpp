#include "snake/scenario.h"

#include <memory>

#include "apps/bulk_http.h"
#include "apps/iperf_dccp.h"
#include "dccp/stack.h"
#include "obs/metrics.h"
#include "snake/faultpoint.h"
#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "snake/arena.h"
#include "statemachine/protocol_specs.h"
#include "tcp/stack.h"

namespace snake::core {

namespace {
constexpr std::uint16_t kHttpPort = 80;
constexpr std::uint16_t kIperfPort = 5001;
}  // namespace

const char* to_string(Protocol protocol) {
  return protocol == Protocol::kTcp ? "tcp" : "dccp";
}

namespace {

proxy::ProxyTargets make_targets(Protocol protocol) {
  using A = sim::DumbbellAddresses;
  proxy::ProxyTargets t;
  t.client_addr = A::kClient1;
  t.server_addr = A::kServer1;
  t.competing_client_addr = A::kClient2;
  t.competing_server_addr = A::kServer2;
  if (protocol == Protocol::kTcp) {
    t.protocol = sim::kProtoTcp;
    t.server_port = kHttpPort;
    t.competing_server_port = kHttpPort;
    t.competing_client_port_guess = 40000;  // our stacks allocate from 40000
  } else {
    t.protocol = sim::kProtoDccp;
    t.server_port = kIperfPort;
    t.competing_server_port = kIperfPort;
    t.competing_client_port_guess = 41000;
  }
  return t;
}

RunMetrics finish_metrics(proxy::AttackProxy& attack_proxy, TimePoint end) {
  RunMetrics m;
  m.client_observations = attack_proxy.tracker().client().observations();
  m.server_observations = attack_proxy.tracker().server().observations();
  m.client_state_stats = attack_proxy.tracker().client().finalize(end);
  m.server_state_stats = attack_proxy.tracker().server().finalize(end);
  m.proxy = attack_proxy.stats();
  return m;
}

/// Arms the trial watchdog and plants any scenario-level fault points before
/// run_until. The fault checks cost one null test in production; the armed
/// degradations (storm, stall, throw) are what the watchdog and the trial
/// guard exist to contain.
void arm_run_guards(const ScenarioConfig& config, sim::Scheduler& scheduler) {
  sim::WatchdogConfig watchdog;
  watchdog.max_events = config.event_budget;
  watchdog.wall_seconds = config.wall_limit_seconds;
  scheduler.arm_watchdog(watchdog);
  if (config.faults == nullptr) return;
  // Plant faults a moment into the run so connection setup has begun and the
  // degradation exercises a mid-trial state, not an empty scheduler.
  const Duration after = Duration::seconds(0.5);
  if (config.faults->should_fire(FaultKind::kEventStorm, config.fault_key,
                                 config.fault_attempt))
    arm_event_storm(scheduler, after);
  if (config.faults->should_fire(FaultKind::kClockStall, config.fault_key,
                                 config.fault_attempt))
    arm_clock_stall(scheduler, after);
  if (config.faults->should_fire(FaultKind::kThrowInTrial, config.fault_key,
                                 config.fault_attempt))
    arm_throw_in_trial(scheduler, after);
}

/// Harvests the watchdog verdict after run_until returned.
void finish_watchdog(RunMetrics& m, sim::Scheduler& scheduler,
                     const ScenarioConfig& config) {
  sim::WatchdogTrip trip = scheduler.watchdog_trip();
  if (trip == sim::WatchdogTrip::kNone) return;
  m.aborted = true;
  m.abort_reason = sim::to_string(trip);
  if (config.metrics != nullptr) {
    ++config.metrics->counter("scenario.aborted_runs");
    ++config.metrics->counter(std::string("scenario.aborted_runs.") + m.abort_reason);
  }
}

/// Dumps the run's substrate counters into the configured registry (no-op
/// without one). Runs after the simulation finishes so the hot path carries
/// zero instrumentation cost.
void export_run_observability(const ScenarioConfig& config, sim::Dumbbell& net,
                              proxy::AttackProxy& attack_proxy, bool attacked) {
  if (config.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *config.metrics;
  ++reg.counter(attacked ? "scenario.attack_runs" : "scenario.baseline_runs");
  net.scheduler().export_metrics(reg);
  if (net.bottleneck_left_to_right() != nullptr)
    net.bottleneck_left_to_right()->export_metrics(reg);
  if (net.bottleneck_right_to_left() != nullptr)
    net.bottleneck_right_to_left()->export_metrics(reg);
  attack_proxy.export_metrics(reg);
}

RunMetrics run_tcp(ScenarioArena& arena, const ScenarioConfig& config,
                   const std::vector<strategy::Strategy>& attacks) {
  obs::ScopedTimer run_timer(config.metrics, "scenario.run_seconds");
  snake::Rng rng(config.seed);
  ScenarioArena::TcpRig rig = arena.acquire_tcp(config.topology, config.tcp_profile, rng);
  sim::Dumbbell& net = *rig.net;
  tcp::TcpStack& client1 = *rig.client1;
  tcp::TcpStack& client2 = *rig.client2;
  tcp::TcpStack& server1 = *rig.server1;
  tcp::TcpStack& server2 = *rig.server2;

  proxy::AttackProxy attack_proxy(net.client1(), packet::tcp_codec(),
                                  statemachine::tcp_state_machine(),
                                  make_targets(Protocol::kTcp), rng.fork());
  net.client1().set_filter(&attack_proxy);
  if (!attacks.empty()) attack_proxy.set_strategies(attacks);
  if (config.inspector != nullptr) net.network().enable_trace();

  apps::BulkHttpServer http1(server1, kHttpPort, config.download_bytes);
  apps::BulkHttpServer http2(server2, kHttpPort, config.download_bytes);
  Duration exit_after =
      Duration::seconds(config.test_duration.to_seconds() * config.client1_exit_fraction);
  apps::BulkHttpClient wget1(client1, sim::DumbbellAddresses::kServer1, kHttpPort, exit_after);
  apps::BulkHttpClient wget2(client2, sim::DumbbellAddresses::kServer2, kHttpPort);

  TimePoint end = net.scheduler().now() + config.test_duration;
  arm_run_guards(config, net.scheduler());
  net.scheduler().run_until(end);

  RunMetrics m = finish_metrics(attack_proxy, end);
  finish_watchdog(m, net.scheduler(), config);
  m.target_bytes = wget1.bytes_received();
  m.competing_bytes = wget2.bytes_received();
  m.target_established = wget1.established();
  m.competing_established = wget2.established();
  m.target_reset = wget1.reset();
  m.competing_reset = wget2.reset();
  m.server1_stuck_sockets = server1.open_sockets();
  m.server2_stuck_sockets = server2.open_sockets();
  m.server1_socket_states = server1.socket_states();
  export_run_observability(config, net, attack_proxy, !attacks.empty());
  if (config.inspector != nullptr) config.inspector->on_run_complete(net, attack_proxy, m);
  return m;
}

RunMetrics run_dccp(ScenarioArena& arena, const ScenarioConfig& config,
                    const std::vector<strategy::Strategy>& attacks) {
  obs::ScopedTimer run_timer(config.metrics, "scenario.run_seconds");
  snake::Rng rng(config.seed);
  ScenarioArena::DccpRig rig = arena.acquire_dccp(config.topology, rng);
  sim::Dumbbell& net = *rig.net;
  dccp::DccpStack& client1 = *rig.client1;
  dccp::DccpStack& client2 = *rig.client2;
  dccp::DccpStack& server1 = *rig.server1;
  dccp::DccpStack& server2 = *rig.server2;

  proxy::AttackProxy attack_proxy(net.client1(), packet::dccp_codec(),
                                  statemachine::dccp_state_machine(),
                                  make_targets(Protocol::kDccp), rng.fork());
  net.client1().set_filter(&attack_proxy);
  if (!attacks.empty()) attack_proxy.set_strategies(attacks);
  if (config.inspector != nullptr) net.network().enable_trace();

  dccp::DccpEndpointConfig accept_config;
  accept_config.ccid = config.dccp_ccid;
  apps::DccpIperfSink sink1(server1, kIperfPort, accept_config);
  apps::DccpIperfSink sink2(server2, kIperfPort, accept_config);
  apps::DccpIperfSource::Options opts;
  opts.offer_rate_pps = config.dccp_offer_rate_pps;
  opts.payload_bytes = config.dccp_payload_bytes;
  opts.duration =
      Duration::seconds(config.test_duration.to_seconds() * config.dccp_data_fraction);
  opts.tx_queue_packets = config.dccp_tx_queue_packets;
  opts.ccid = config.dccp_ccid;
  apps::DccpIperfSource src1(client1, sim::DumbbellAddresses::kServer1, kIperfPort, opts);
  apps::DccpIperfSource src2(client2, sim::DumbbellAddresses::kServer2, kIperfPort, opts);

  TimePoint end = net.scheduler().now() + config.test_duration;
  arm_run_guards(config, net.scheduler());
  net.scheduler().run_until(end);

  RunMetrics m = finish_metrics(attack_proxy, end);
  finish_watchdog(m, net.scheduler(), config);
  // "Since DCCP is not a reliable protocol, we measured performance based on
  // server goodput, or actual data received."
  m.target_bytes = sink1.goodput_bytes();
  m.competing_bytes = sink2.goodput_bytes();
  m.target_established = src1.established();
  m.competing_established = src2.established();
  m.target_reset = src1.reset();
  m.competing_reset = src2.reset();
  m.server1_stuck_sockets = server1.open_sockets();
  m.server2_stuck_sockets = server2.open_sockets();
  m.server1_socket_states = server1.socket_states();
  export_run_observability(config, net, attack_proxy, !attacks.empty());
  if (config.inspector != nullptr) config.inspector->on_run_complete(net, attack_proxy, m);
  return m;
}

}  // namespace

RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks) {
  return config.protocol == Protocol::kTcp ? run_tcp(arena, config, attacks)
                                           : run_dccp(arena, config, attacks);
}

RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack) {
  std::vector<strategy::Strategy> attacks;
  if (attack.has_value()) attacks.push_back(*attack);
  return run_scenario(arena, config, attacks);
}

RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks) {
  ScenarioArena arena;
  return run_scenario(arena, config, attacks);
}

RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack) {
  ScenarioArena arena;
  return run_scenario(arena, config, attack);
}

}  // namespace snake::core
