#include "snake/faultpoint.h"

#include <chrono>
#include <thread>

#include "sim/scheduler.h"

namespace snake::core {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrowInTrial: return "throw-in-trial";
    case FaultKind::kEventStorm: return "event-storm";
    case FaultKind::kSerializeFailure: return "serialize-failure";
    case FaultKind::kClockStall: return "clock-stall";
  }
  return "?";
}

bool FaultPlan::should_fire(FaultKind kind, std::uint64_t key, std::uint32_t attempt) const {
  for (const FaultRule& rule : rules_) {
    if (rule.matches(kind, key, attempt)) {
      fires_[static_cast<std::size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

namespace {

void storm_tick(sim::Scheduler& scheduler) {
  scheduler.schedule_in(Duration::seconds(0), [&scheduler] { storm_tick(scheduler); });
}

void stall_tick(sim::Scheduler& scheduler) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  scheduler.schedule_in(Duration::seconds(1e-6), [&scheduler] { stall_tick(scheduler); });
}

}  // namespace

void arm_event_storm(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [&scheduler] { storm_tick(scheduler); });
}

void arm_clock_stall(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [&scheduler] { stall_tick(scheduler); });
}

void arm_throw_in_trial(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [] {
    throw FaultInjectedError("fault point: throw-in-trial");
  });
}

const char* to_string(WireFault fault) {
  switch (fault) {
    case WireFault::kTornFrame: return "torn-frame";
    case WireFault::kGarbageBytes: return "garbage-bytes";
    case WireFault::kDuplicateFrame: return "duplicate-frame";
    case WireFault::kDelayFrame: return "delay-frame";
    case WireFault::kStallHeartbeat: return "stall-heartbeat";
    case WireFault::kDieMidWrite: return "die-mid-write";
  }
  return "?";
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool WireFaultPlan::should_fire(WireFault fault, std::uint64_t op) const {
  if ((mask_ & wire_fault_bit(fault)) == 0 || period_ == 0) return false;
  const auto index = static_cast<std::uint64_t>(fault);
  const std::uint64_t h = splitmix64(seed_ ^ splitmix64(index + 1) ^ op * 0x2545f4914f6cdd1dull);
  if (h % period_ != 0) return false;
  fires_[static_cast<std::size_t>(fault)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t WireFaultPlan::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& f : fires_) total += f.load(std::memory_order_relaxed);
  return total;
}

}  // namespace snake::core
