#include "snake/faultpoint.h"

#include <chrono>
#include <thread>

#include "sim/scheduler.h"

namespace snake::core {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrowInTrial: return "throw-in-trial";
    case FaultKind::kEventStorm: return "event-storm";
    case FaultKind::kSerializeFailure: return "serialize-failure";
    case FaultKind::kClockStall: return "clock-stall";
  }
  return "?";
}

bool FaultPlan::should_fire(FaultKind kind, std::uint64_t key, std::uint32_t attempt) const {
  for (const FaultRule& rule : rules_) {
    if (rule.matches(kind, key, attempt)) {
      fires_[static_cast<std::size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

namespace {

void storm_tick(sim::Scheduler& scheduler) {
  scheduler.schedule_in(Duration::seconds(0), [&scheduler] { storm_tick(scheduler); });
}

void stall_tick(sim::Scheduler& scheduler) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  scheduler.schedule_in(Duration::seconds(1e-6), [&scheduler] { stall_tick(scheduler); });
}

}  // namespace

void arm_event_storm(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [&scheduler] { storm_tick(scheduler); });
}

void arm_clock_stall(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [&scheduler] { stall_tick(scheduler); });
}

void arm_throw_in_trial(sim::Scheduler& scheduler, Duration after) {
  scheduler.schedule_in(after, [] {
    throw FaultInjectedError("fault point: throw-in-trial");
  });
}

}  // namespace snake::core
