#include "snake/detector.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"
#include "util/strings.h"

namespace snake::core {

namespace {
double ratio(std::uint64_t run, std::uint64_t baseline) {
  if (baseline == 0) return run == 0 ? 1.0 : 2.0;  // something from nothing
  return static_cast<double>(run) / static_cast<double>(baseline);
}
}  // namespace

Detection detect(const RunMetrics& baseline, const RunMetrics& run, double threshold) {
  Detection d;
  d.target_ratio = ratio(run.target_bytes, baseline.target_bytes);
  d.competing_ratio = ratio(run.competing_bytes, baseline.competing_bytes);

  double low = threshold;        // -50%
  double high = 1.0 + threshold; // +50%

  if (d.target_ratio <= low) {
    d.is_attack = true;
    d.reasons.push_back(str_format("target throughput down to %.0f%% of baseline",
                                   d.target_ratio * 100));
  }
  if (d.target_ratio >= high) {
    d.is_attack = true;
    d.reasons.push_back(str_format("target throughput up to %.0f%% of baseline (fairness)",
                                   d.target_ratio * 100));
  }
  if (d.competing_ratio <= low) {
    d.is_attack = true;
    d.reasons.push_back(str_format("competing throughput down to %.0f%% of baseline",
                                   d.competing_ratio * 100));
  }
  if (d.competing_ratio >= high) {
    d.is_attack = true;
    d.reasons.push_back(str_format("competing throughput up to %.0f%% of baseline",
                                   d.competing_ratio * 100));
  }
  if (run.server1_stuck_sockets > baseline.server1_stuck_sockets) {
    d.is_attack = true;
    d.resource_exhaustion = true;
    d.reasons.push_back(str_format("server socket not released (%zu stuck vs %zu baseline)",
                                   run.server1_stuck_sockets,
                                   baseline.server1_stuck_sockets));
  }
  return d;
}

double impact_score(const Detection& d) {
  double deviation = std::max(std::abs(1.0 - d.target_ratio), std::abs(1.0 - d.competing_ratio));
  return (d.resource_exhaustion ? 10.0 : 0.0) + deviation;
}

const char* to_string(AttackClass cls) {
  switch (cls) {
    case AttackClass::kOnPath: return "on-path";
    case AttackClass::kFalsePositive: return "false-positive";
    case AttackClass::kTrueAttack: return "true-attack";
  }
  return "?";
}

AttackClass classify(const strategy::Strategy& s, const packet::HeaderFormat& format,
                     const Detection& detection, const RunMetrics& run) {
  using strategy::AttackAction;

  // Lie strategies on addressing/structural fields only "work" by breaking
  // the packet's identity — an on-path capability, and pointless for a
  // malicious client (it could simply not connect).
  if (s.action == AttackAction::kLie && s.lie.has_value()) {
    const packet::FieldSpec* field = format.field(s.lie->field);
    if (field != nullptr && (field->kind == packet::FieldKind::kPort ||
                             field->kind == packet::FieldKind::kLength)) {
      return AttackClass::kOnPath;
    }
  }

  // hitseqwindow: a true hit resets the targeted connection; a mere
  // slowdown under tens of thousands of injected packets is the volume
  // artifact the paper calls out as its false-positive class.
  if (s.action == AttackAction::kHitSeqWindow && s.inject.has_value()) {
    bool victim_reset =
        s.inject->target_competing ? run.competing_reset : run.target_reset;
    if (!victim_reset && !detection.resource_exhaustion) return AttackClass::kFalsePositive;
  }

  return AttackClass::kTrueAttack;
}

namespace {
/// What the strategy actually did — the coarse grouping the paper reaches by
/// inspecting each finding ("functionally the same attack"). The ratio
/// cut-offs are the *same* configurable threshold detection uses: with a
/// hardcoded 0.5 here, a campaign run at a different threshold could detect
/// an attack this function then couldn't attribute to a throughput effect.
std::string effect_class(const strategy::Strategy& s, const Detection& detection,
                         const RunMetrics& run, double threshold) {
  double low = threshold;
  double high = 1.0 + threshold;
  bool competing_target =
      s.inject.has_value() ? s.inject->target_competing : false;
  if (detection.resource_exhaustion) return "server-resource-exhaustion";
  if (competing_target ? run.competing_reset : run.target_reset) return "connection-reset";
  if (!run.target_established && !competing_target) return "establishment-prevented";
  if (!run.competing_established && competing_target) return "establishment-prevented";
  if (detection.target_ratio >= high) return "fairness-gain";
  if (detection.target_ratio <= low && !competing_target) return "throughput-degradation";
  if (detection.competing_ratio <= low) return "competing-degradation";
  return "performance-shift";
}
}  // namespace

std::string attack_signature(const strategy::Strategy& s, const packet::HeaderFormat& format,
                             const Detection& detection, const RunMetrics& run,
                             double threshold) {
  using strategy::AttackAction;
  std::string sig = to_string(s.action);
  sig += "/";
  sig += to_string(s.direction);
  switch (s.action) {
    case AttackAction::kLie:
      if (s.lie.has_value()) {
        const packet::FieldSpec* field = format.field(s.lie->field);
        sig += "/";
        sig += field != nullptr ? to_string(field->kind) : "?";
      }
      break;
    case AttackAction::kInject:
    case AttackAction::kHitSeqWindow:
      if (s.inject.has_value())
        sig += s.inject->target_competing ? "/competing" : "/own";
      break;
    case AttackAction::kDrop:
    case AttackAction::kDelay:
    case AttackAction::kBatch:
    case AttackAction::kReflect:
      sig += "/" + s.packet_type;
      break;
    case AttackAction::kDuplicate:
      sig += "/" + s.packet_type;
      sig += s.duplicate_count >= 3 ? "/burst" : "/light";
      break;
  }
  sig += '=';
  sig += effect_class(s, detection, run, threshold);
  return sig;
}

void write_json(obs::JsonWriter& w, const Detection& d) {
  w.begin_object();
  w.key("is_attack").value(d.is_attack);
  w.key("target_ratio").value(d.target_ratio);
  w.key("competing_ratio").value(d.competing_ratio);
  w.key("resource_exhaustion").value(d.resource_exhaustion);
  w.key("reasons").begin_array();
  for (const std::string& r : d.reasons) w.value(r);
  w.end_array();
  w.end_object();
}

Detection detection_from_json(const obs::JsonValue& v) {
  Detection d;
  if (!v.is_object()) return d;
  if (const obs::JsonValue* f = v.find("is_attack"); f != nullptr && f->is_bool())
    d.is_attack = f->bool_v;
  if (const obs::JsonValue* f = v.find("target_ratio"); f != nullptr)
    d.target_ratio = f->number_or(d.target_ratio);
  if (const obs::JsonValue* f = v.find("competing_ratio"); f != nullptr)
    d.competing_ratio = f->number_or(d.competing_ratio);
  if (const obs::JsonValue* f = v.find("resource_exhaustion");
      f != nullptr && f->is_bool())
    d.resource_exhaustion = f->bool_v;
  if (const obs::JsonValue* reasons = v.find("reasons");
      reasons != nullptr && reasons->is_array())
    for (const obs::JsonValue& r : reasons->array_v)
      if (r.is_string()) d.reasons.push_back(r.str_v);
  return d;
}

}  // namespace snake::core
