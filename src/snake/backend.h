// Pluggable trial execution for the campaign controller.
//
// The controller is a deterministic coordinator: it walks the strategy queue
// in a fixed order, hands numbered trials to a TrialBackend, and commits the
// outcomes strictly in dispatch order. The backend only decides *where* a
// trial body runs — on a pool of in-process executor threads (the default,
// see trial_runner.h) or on a fleet of worker processes (src/dist) — and may
// finish trials in any order; the commit discipline makes the campaign
// result a pure function of the seed either way, which is what lets a
// distributed campaign be compared bit-for-bit against its single-process
// twin (dist_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "snake/journal.h"
#include "strategy/strategy.h"

namespace snake::obs {
class MetricsRegistry;
}

namespace snake::core {

struct CampaignConfig;
struct RunMetrics;

/// One dispatched trial. `seq` is the dispatch ordinal (0-based): outcomes
/// are committed in `seq` order no matter when they finish.
struct TrialTask {
  std::uint64_t seq = 0;
  strategy::Strategy strat;
};

/// What comes back from the backend for one task: the full trial record
/// (verdict, detection payload, failure tallies) plus the deduplicated
/// send-observations that feed the strategy generator.
struct TrialOutcome {
  std::uint64_t seq = 0;
  TrialRecord record;
};

/// Executes trials on behalf of the campaign coordinator. Implementations
/// are used from the coordinating thread only; they may run trials
/// anywhere, in any order, but must eventually return one outcome per
/// submitted task (recovering internally from worker loss — see
/// dist::DistributedBackend).
class TrialBackend {
 public:
  virtual ~TrialBackend() = default;

  /// Prepares the backend for one campaign. `baseline` / `retest_baseline`
  /// are the coordinator's non-attack runs; backends that compute their own
  /// (worker processes do, "an executor first runs a non-attack test") use
  /// them to cross-check determinism. Returns false when the backend cannot
  /// start (the campaign then falls back to in-process execution).
  virtual bool start(const CampaignConfig& config, const RunMetrics& baseline,
                     const RunMetrics& retest_baseline) = 0;

  /// Max trials usefully in flight; the coordinator dispatches ahead up to
  /// this depth so executors never starve while it commits.
  virtual std::size_t capacity() const = 0;

  /// Hands one trial to the backend. Never blocks for trial completion.
  virtual void submit(TrialTask task) = 0;

  /// Blocks until some submitted trial finishes and returns its outcome.
  /// Must only be called while trials are in flight.
  virtual TrialOutcome wait_outcome() = 0;

  /// Newly covered (state, packet type) send-pairs, committed by the
  /// coordinator. Distributed backends broadcast these to workers so result
  /// payloads shrink as the search-space reduction converges; the default
  /// backend needs no such hint.
  virtual void on_feedback(const std::vector<JournalObservation>& pairs) { (void)pairs; }

  /// Tears the backend down and folds its executors' metric registries into
  /// `into` (nullptr when the campaign runs without metrics).
  virtual void finish(obs::MetricsRegistry* into) = 0;
};

/// Memoized trial verdicts, pre-bound to one campaign identity (see
/// campaign_identity_hash). A hit replays exactly like a journal resume —
/// recorded outcome plus recorded generator feedback — so cached and
/// uncached campaigns produce equal results (enforced in dist_test.cpp).
class TrialCache {
 public:
  virtual ~TrialCache() = default;

  /// Returns the cached record for a canonical strategy key, or nullptr.
  /// The pointer must stay valid until the next store() call.
  virtual const TrialRecord* lookup(const std::string& key) = 0;

  /// Remembers a freshly computed trial record. Called in commit order.
  virtual void store(const TrialRecord& record) = 0;
};

}  // namespace snake::core
