// The guarded trial body shared by every TrialBackend, plus the default
// in-process thread-pool backend.
//
// execute_trial() is the exact per-strategy protocol of the paper's
// executor: run the attack scenario, compare against the non-attack
// baseline, retest candidates under a different seed, retry failed attempts
// under a perturbed seed, and fold it all into one TrialRecord. Pulling it
// out of the controller lets worker *processes* (src/dist) run the identical
// code path — determinism across backends falls out of sharing the body.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/header_format.h"
#include "snake/backend.h"
#include "snake/scenario.h"

namespace snake::core {

class SnapshotStore;

/// Everything a trial body needs besides the strategy itself. The pointed-to
/// objects must outlive the calls (they live in the campaign coordinator or
/// the worker process main loop).
struct TrialContext {
  const ScenarioConfig* run_template = nullptr;     ///< attack-run config (seed base)
  const ScenarioConfig* retest_template = nullptr;  ///< repeatability-run config
  const RunMetrics* baseline = nullptr;
  const RunMetrics* retest_baseline = nullptr;
  const packet::HeaderFormat* format = nullptr;
  double threshold = 0.5;
  std::uint32_t max_attempts = 1;
  std::uint64_t retry_seed_offset = 7919;
  /// Snapshot-fork layer for this executor (optional, not owned). When set,
  /// first-attempt runs are served from checkpoints where eligible (see
  /// snapshot.h); retries and ineligible runs replay from zero as before.
  SnapshotStore* snapshots = nullptr;
};

/// Converts a run's raw observation stream into the journaled form: the
/// deduplicated (state, packet type) *send* pairs in first-occurrence order.
/// This is exactly the subset StrategyGenerator::on_observations consumes
/// (it ignores receive-events and dedups via its covered set), so feeding
/// these pairs back — live, from a journal, or over a wire — reproduces the
/// generator's output verbatim.
std::vector<JournalObservation> journal_observations(
    const std::vector<statemachine::EndpointTracker::Observation>& obs);

/// Runs one strategy to a terminal TrialRecord: completed (with detection
/// payload when found and retest-confirmed) or failed-every-attempt
/// (aborted/errored — the caller quarantines it). `reg` may be null.
TrialRecord execute_trial(ScenarioArena& arena, const TrialContext& ctx,
                          const strategy::Strategy& strat, obs::MetricsRegistry* reg);

/// The default backend: `executors` in-process threads, each owning a
/// ScenarioArena and (when metrics are on) a private registry merged at
/// finish(). Replaces the controller's previous hand-rolled pool; with the
/// coordinator's in-order commits, campaigns are now deterministic for any
/// executor count, not just one.
class ThreadBackend : public TrialBackend {
 public:
  explicit ThreadBackend(int executors);
  ~ThreadBackend() override;

  bool start(const CampaignConfig& config, const RunMetrics& baseline,
             const RunMetrics& retest_baseline) override;
  std::size_t capacity() const override;
  void submit(TrialTask task) override;
  TrialOutcome wait_outcome() override;
  void finish(obs::MetricsRegistry* into) override;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace snake::core
