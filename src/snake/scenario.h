// One SNAKE test scenario: the dumbbell topology of Figure 3 with a target
// connection (client1 -> server1, proxied) and a competing connection
// (client2 -> server2), run for a fixed span of virtual time under at most
// one attack strategy.
//
// This is the in-process equivalent of the paper's executor payload: four
// VM instances of the implementation under test, NS-3 gluing them into a
// dumbbell, the attack proxy on client1's access path, and the performance /
// netstat measurements collected at the end.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/dumbbell.h"
#include "statemachine/tracker.h"
#include "strategy/strategy.h"
#include "proxy/attack_proxy.h"
#include "tcp/profile.h"
#include "util/time.h"

namespace snake::obs {
class JsonWriter;
struct JsonValue;
class MetricsRegistry;
}

namespace snake::core {

class FaultPlan;
class RunInspector;

enum class Protocol { kTcp, kDccp };

const char* to_string(Protocol protocol);

/// Application workload driving the target (proxied) connection. kBulk is
/// the paper's synthetic large download; kTrace replays a recorded
/// per-flow schedule (src/trace) against the same attack machinery. The
/// competing connection always runs the bulk workload so the detector's
/// fairness baseline stays comparable across workloads.
enum class Workload { kBulk, kTrace };

const char* to_string(Workload workload);

struct ScenarioConfig {
  Protocol protocol = Protocol::kTcp;

  /// TCP implementation under test (all four hosts run it, as in the paper).
  /// Ignored for DCCP, which models the Linux 3.13 implementation.
  tcp::TcpProfile tcp_profile = tcp::linux_3_13_profile();

  sim::DumbbellConfig topology;
  Duration test_duration = Duration::seconds(30.0);

  // TCP workload: large HTTP download on both connections; the proxied
  // client's application exits abruptly partway through (wget terminated
  // mid-download), which is what makes teardown-phase attacks reachable.
  std::uint64_t download_bytes = 1ULL << 30;  ///< effectively unbounded
  double client1_exit_fraction = 0.6;         ///< of test_duration

  // Trace-replay workload (TCP only; used when workload == kTrace). The
  // trace travels as text — including over the dist wire — so every worker
  // rebuilds the identical ReplayPlan; its content is folded into the
  // campaign identity hash.
  Workload workload = Workload::kBulk;
  std::string trace_text;           ///< snake-trace/v1 file contents
  std::size_t trace_max_flows = 8;  ///< deterministic down-sample cap (0 = all)
  double trace_time_scale = 1.0;    ///< timestamp multiplier

  // DCCP workload: iperf-like CBR stream client->server, closing after
  // data_fraction of the test so the teardown phase is exercised.
  double dccp_offer_rate_pps = 2000;
  std::size_t dccp_payload_bytes = 1000;
  double dccp_data_fraction = 0.6;
  std::size_t dccp_tx_queue_packets = 50;
  int dccp_ccid = 2;  ///< 2 = TCP-like (paper), 3 = TFRC (extension)

  std::uint64_t seed = 1;

  /// Observability sink (optional, not owned). When set, the run records
  /// wall-clock timing plus scheduler / bottleneck-link / proxy / tracker
  /// counters into it. Instrumentation never feeds back into simulation
  /// behaviour: identical seeds produce identical RunMetrics with or
  /// without a registry attached.
  obs::MetricsRegistry* metrics = nullptr;

  // --- Trial watchdog (resilience layer) -----------------------------------
  /// Abort the run after this many scheduler events (0 = unlimited). A
  /// pathological strategy that floods the event queue is cut off and the
  /// run reported with RunMetrics::aborted instead of hanging its executor.
  std::uint64_t event_budget = 0;
  /// Wall-clock deadline for this one run, in seconds (0 = none). Catches
  /// runs whose virtual clock stops advancing while callbacks burn real time.
  double wall_limit_seconds = 0.0;

  /// Deterministic early-exit: stop the run at the quiescence cut — once no
  /// pending event that could change the detector's inputs remains before
  /// the horizon — instead of simulating to the fixed end time. Virtual time
  /// still advances to the horizon. Everything a campaign decides on (bytes
  /// delivered, verdicts, classifications, signatures, observations) is
  /// identical either way — enforced by tests; the only divergence is
  /// invisible bookkeeping (TIME_WAIT sockets whose lazy release timer never
  /// fires still show as TIME_WAIT in server1_socket_states, which nothing
  /// reads for detection). Off by default so direct run_scenario callers
  /// keep exact historical behaviour; campaigns switch it on via
  /// CampaignConfig::early_exit. The cut point is a pure function of the
  /// event history, so forked and from-zero runs agree on it.
  bool early_exit = false;

  /// Fault-injection plan (tests/benches only; not owned, nullptr in
  /// production — the only cost then is this null check). Scenario-level
  /// rules (event storm, clock stall, throw-in-trial) are keyed by
  /// `fault_key`/`fault_attempt`, which the campaign controller sets to the
  /// strategy id and retry attempt.
  const FaultPlan* faults = nullptr;
  std::uint64_t fault_key = 0;
  std::uint32_t fault_attempt = 0;

  /// Post-run inspection hook (tests/benches only; not owned). When set, the
  /// run enables packet capture on every node and calls the inspector after
  /// the simulation finishes, while the network, proxy and trace are still
  /// alive — this is how the property suite's invariant oracles see inside a
  /// trial. Tracing costs memory and time, so production campaigns leave it
  /// null; like `metrics`, the hook never feeds back into simulation
  /// behaviour.
  RunInspector* inspector = nullptr;
};

/// Everything the executor reports back to the controller after one run.
struct RunMetrics {
  // Performance: application bytes delivered on each connection.
  std::uint64_t target_bytes = 0;
  std::uint64_t competing_bytes = 0;

  bool target_established = false;
  bool competing_established = false;
  bool target_reset = false;
  bool competing_reset = false;

  /// netstat at the servers after the run (TIME_WAIT excluded): sockets not
  /// released normally.
  std::size_t server1_stuck_sockets = 0;
  std::size_t server2_stuck_sockets = 0;
  std::map<std::string, int> server1_socket_states;

  /// State-tracking feedback for the controller's incremental strategy
  /// generation.
  std::vector<statemachine::EndpointTracker::Observation> client_observations;
  std::vector<statemachine::EndpointTracker::Observation> server_observations;
  std::map<std::string, statemachine::StateStats> client_state_stats;
  std::map<std::string, statemachine::StateStats> server_state_stats;

  proxy::ProxyStats proxy;

  /// Watchdog verdict: true when the run was cut off by its event budget or
  /// wall-clock deadline instead of reaching the virtual-time horizon. The
  /// other fields then describe the truncated run and must not be compared
  /// against a full-length baseline.
  bool aborted = false;
  std::string abort_reason;  ///< "event-budget" or "wall-clock" when aborted
};

/// Writes the full RunMetrics as one JSON object (run_metrics_json.cpp).
/// The encoding round-trips *exactly* through run_metrics_from_json:
/// durations travel as integer nanoseconds, doubles are rendered
/// round-trippably, observation order is preserved. Exactness matters —
/// workers ship their baseline RunMetrics to the coordinator over this
/// encoding, and the coordinator compares it against its own baseline for
/// the cross-process determinism check (src/dist).
void write_json(obs::JsonWriter& w, const RunMetrics& m);

/// Parses write_json's encoding; nullopt when the document is not an object
/// or an observation entry is malformed.
std::optional<RunMetrics> run_metrics_from_json(const obs::JsonValue& v);

/// Observer given read access to a finished run's live objects (network with
/// its packet trace, attack proxy with its trackers) plus the metrics about
/// to be returned. Implementations must not mutate the simulation; when one
/// inspector is shared across campaign executors it must be thread-safe.
class RunInspector {
 public:
  virtual ~RunInspector() = default;
  virtual void on_run_complete(sim::Dumbbell& net, proxy::AttackProxy& attack_proxy,
                               const RunMetrics& metrics) = 0;
};

class ScenarioArena;

/// Runs one scenario to completion and returns its metrics. Runs are
/// independent every time (the paper's executors restore VM snapshots for
/// the same reason); these convenience overloads build a throwaway
/// ScenarioArena per call.
RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack);

/// Combined-strategy variant: all strategies in `attacks` are active at
/// once (see AttackProxy::set_strategies for composition semantics).
RunMetrics run_scenario(const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks);

/// Arena variants: the network and stacks are borrowed from `arena` and
/// reset in place rather than rebuilt — the hot path for campaign workers,
/// which run thousands of trials against one topology. Bit-identical to the
/// arena-less overloads for the same config (see arena.h).
RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::optional<strategy::Strategy>& attack);
RunMetrics run_scenario(ScenarioArena& arena, const ScenarioConfig& config,
                        const std::vector<strategy::Strategy>& attacks);

}  // namespace snake::core
