#include "snake/snapshot.h"

#include <algorithm>
#include <limits>
#include <set>

#include "obs/json.h"
#include "obs/metrics.h"
#include "statemachine/protocol_specs.h"

namespace snake::core {

using statemachine::Role;
using strategy::AttackAction;
using strategy::MatchMode;
using strategy::Strategy;

namespace {

constexpr std::uint64_t kNoCut = std::numeric_limits<std::uint64_t>::max();

/// Which endpoint's state trajectory gates this strategy's first action.
/// Per-packet actions match on the *sender's* state; injections fire on the
/// state of the endpoint the forged packet impersonates toward (the
/// receiver) — see AttackProxy::matches / maybe_fire_injections.
Role watched_role(const Strategy& s) {
  if (s.action == AttackAction::kInject || s.action == AttackAction::kHitSeqWindow)
    return s.inject.has_value() && s.inject->spoof_toward_client ? Role::kClient
                                                                 : Role::kServer;
  return s.direction == strategy::TrafficDirection::kClientToServer ? Role::kClient
                                                                    : Role::kServer;
}

using CutMap = std::map<std::pair<Role, std::string>, std::uint64_t>;
using StateSet = std::set<std::pair<Role, std::string>>;

/// Pass 1: one unarmed run with enter hooks on both trackers, recording the
/// heap-pop count at the *first* entry of every (role, state). The cut is
/// pops-at-hook minus one: the hook fires inside the event that causes the
/// entry (after the scheduler counted it), so run_events(cut) in pass 2
/// stops exactly *before* that event pops — at the checkpoint, the tracker
/// has not yet entered the state, and strategies armed there behave
/// identically to strategies armed at t=0.
///
/// Entries with zero pops happened *during world construction* (the client
/// applications push their first handshake packets through the proxy
/// synchronously — SYN_SENT / SYN_RCVD / REQUEST are entered before any
/// event fires). No between-events checkpoint can precede those entries, so
/// they land in `pre_run` and serve() declines strategies targeting them.
/// The hooks are installed via init's after_proxy callback, before the apps
/// exist, precisely so these entries are visible.
template <typename World>
bool discover_cuts(World& world, ScenarioArena& arena, const ScenarioConfig& config,
                   CutMap& cuts, StateSet& pre_run) {
  auto hook = [&cuts, &pre_run, &world](Role role, const std::string& state) {
    auto key = std::make_pair(role, state);
    if (cuts.find(key) != cuts.end() || pre_run.find(key) != pre_run.end()) return;
    const sim::Scheduler& sched = world.rig.net->scheduler();
    std::uint64_t pops = sched.events_executed() + sched.events_cancelled();
    if (pops == 0)
      pre_run.insert(std::move(key));
    else
      cuts.emplace(std::move(key), pops - 1);
  };
  world.init(arena, config, {}, [&hook](proxy::AttackProxy& p) {
    p.tracker().client().set_enter_hook(hook);
    p.tracker().server().set_enter_hook(hook);
  });
  world.rig.net->scheduler().run_until(world.end);
  world.proxy->tracker().client().set_enter_hook(nullptr);
  world.proxy->tracker().server().set_enter_hook(nullptr);
  return world.rig.net->scheduler().watchdog_trip() == sim::WatchdogTrip::kNone;
}

/// Pass 2: re-run the same deterministic prefix, stopping at every distinct
/// cut (ascending) to capture a checkpoint, plus one at pop 0 so a fork
/// source always exists. The world must not be re-initialised afterwards —
/// freeze() pins the canonical endpoint population.
template <typename World, typename SnapMap>
bool capture_cuts(World& world, ScenarioArena& arena, const ScenarioConfig& config,
                  const CutMap& cuts, SnapMap& snaps) {
  world.init(arena, config, {});
  sim::Scheduler& sched = world.rig.net->scheduler();
  std::vector<std::uint64_t> points;
  points.push_back(0);
  for (const auto& [key, cut] : cuts) points.push_back(cut);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::uint64_t pops = 0;
  for (std::uint64_t cut : points) {
    if (cut > pops) {
      pops += sched.run_events(cut - pops);
      if (pops != cut) return false;  // queue drained early or watchdog tripped
    }
    typename World::Snapshot snap;
    if (!world.capture(snap)) return false;
    snaps.emplace(cut, std::move(snap));
  }
  world.freeze();
  return true;
}

template <typename World, typename SnapMap>
RunMetrics serve_world(World& world, const SnapMap& snaps, std::uint64_t cut,
                       const ScenarioConfig& config,
                       const std::vector<Strategy>& attacks) {
  auto it = cut == kNoCut ? std::prev(snaps.end()) : snaps.find(cut);
  if (it == snaps.end()) it = std::prev(snaps.end());
  {
    obs::ScopedTimer restore_timer(config.metrics, "snapshot.restore_seconds");
    world.restore(it->second);
  }
  world.proxy->set_strategies(attacks);
  // Same driver as run_scenario: a forked trial must take the identical
  // early-exit cut a from-zero trial would (the selfcheck byte-compares them).
  detail::drive_to_end(world.rig.net->scheduler(), config, world.end);
  return world.finish(config, !attacks.empty());
}

}  // namespace

// ------------------------------------------------------------ SnapshotSession

struct SnapshotSession::Impl {
  ScenarioConfig config;  ///< session-owned copy; hooks nulled
  ScenarioArena arena;    ///< private: fallback trials never touch it
  CutMap cuts;
  StateSet pre_run;  ///< (role, state) entered during world init; no valid cut
  // Exactly one world (by config.protocol) is engaged. Members are ordered
  // so snapshots are destroyed before the world and the world before the
  // arena it references.
  std::optional<detail::TcpWorld> tcp;
  std::optional<detail::DccpWorld> dccp;
  std::map<std::uint64_t, detail::TcpWorld::Snapshot> tcp_snaps;
  std::map<std::uint64_t, detail::DccpWorld::Snapshot> dccp_snaps;

  ~Impl() {
    // Snapshot maps hold clones referencing world objects; drop them first,
    // then the world, then the arena (member order handles the rest).
    tcp_snaps.clear();
    dccp_snaps.clear();
  }
};

SnapshotSession::SnapshotSession(const ScenarioConfig& config) : impl_(new Impl) {
  impl_->config = config;
  impl_->config.metrics = nullptr;    // build passes are bookkeeping-silent
  impl_->config.faults = nullptr;     // gated by the store; re-nulled for
  impl_->config.inspector = nullptr;  // sessions built directly in tests
  bool ok = false;
  try {
    if (config.protocol == Protocol::kTcp) {
      impl_->tcp.emplace();
      ok = discover_cuts(*impl_->tcp, impl_->arena, impl_->config, impl_->cuts,
                         impl_->pre_run) &&
           capture_cuts(*impl_->tcp, impl_->arena, impl_->config, impl_->cuts,
                        impl_->tcp_snaps);
    } else {
      impl_->dccp.emplace();
      ok = discover_cuts(*impl_->dccp, impl_->arena, impl_->config, impl_->cuts,
                         impl_->pre_run) &&
           capture_cuts(*impl_->dccp, impl_->arena, impl_->config, impl_->cuts,
                        impl_->dccp_snaps);
    }
  } catch (...) {
    ok = false;
  }
  bad_ = !ok;
}

SnapshotSession::~SnapshotSession() = default;

std::size_t SnapshotSession::snapshot_count() const {
  return impl_->tcp_snaps.size() + impl_->dccp_snaps.size();
}

std::optional<RunMetrics> SnapshotSession::serve(
    const ScenarioConfig& config, const std::vector<Strategy>& attacks) {
  if (bad_) return std::nullopt;
  Impl& im = *impl_;
  if (config.seed != im.config.seed || config.protocol != im.config.protocol)
    return std::nullopt;

  // The fork point: the earliest first-entry of any component's watched
  // (role, state). A component whose target was never entered in the unarmed
  // run can never fire before the run diverges, so it doesn't constrain the
  // cut; if *no* component's target was ever entered, the whole trial equals
  // the unarmed run and forks from the latest checkpoint.
  std::uint64_t cut = kNoCut;
  for (const Strategy& s : attacks) {
    auto key = std::make_pair(watched_role(s), s.target_state);
    // States entered during world construction (the synchronous connect
    // handshake) have no between-events checkpoint preceding them, and a
    // from-zero run arms its strategies *before* the apps exist while a fork
    // arms them after — decline, the caller replays from zero.
    if (im.pre_run.find(key) != im.pre_run.end()) return std::nullopt;
    auto it = im.cuts.find(key);
    if (it != im.cuts.end()) cut = std::min(cut, it->second);
  }

  obs::ScopedTimer run_timer(config.metrics, "scenario.run_seconds");
  try {
    if (im.tcp.has_value())
      return serve_world(*im.tcp, im.tcp_snaps, cut, config, attacks);
    return serve_world(*im.dccp, im.dccp_snaps, cut, config, attacks);
  } catch (...) {
    // The world's integrity after a mid-run throw is unknown; poison the
    // session and let the caller replay from zero.
    bad_ = true;
    throw;
  }
}

// -------------------------------------------------------------- SnapshotStore

/// The sessions built for one seed. `sessions` owns them for the store's
/// lifetime; `idle` holds the ones not currently serving a trial; `building`
/// counts in-flight constructions (they reserve pool capacity before the
/// session exists so concurrent executors never overshoot the cap).
struct SnapshotStore::SeedPool {
  std::vector<std::unique_ptr<SnapshotSession>> sessions;
  std::vector<SnapshotSession*> idle;
  std::size_t building = 0;
};

SnapshotStore::SnapshotStore() = default;
SnapshotStore::~SnapshotStore() = default;

void SnapshotStore::set_max_sessions_per_seed(std::size_t cap) {
  max_sessions_per_seed_ = cap == 0 ? 1 : cap;
}

std::uint64_t SnapshotStore::selfcheck_violations() const {
  std::lock_guard<std::mutex> lock(const_cast<SnapshotStore*>(this)->selfcheck_mutex_);
  return violations_;
}

SnapshotSession* SnapshotStore::acquire(std::uint64_t seed, const ScenarioConfig& config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<SeedPool>& pool = pools_[seed];
    if (pool == nullptr) pool = std::make_unique<SeedPool>();
    if (!pool->idle.empty()) {
      SnapshotSession* session = pool->idle.back();
      pool->idle.pop_back();
      return session;
    }
    if (pool->sessions.size() + pool->building >= max_sessions_per_seed_)
      return nullptr;  // every session busy, pool full: caller runs from zero
    ++pool->building;
  }
  // Build outside the lock: the two prefix passes cost as much as several
  // trials, and other executors must keep serving (or falling back)
  // meanwhile.
  std::unique_ptr<SnapshotSession> built;
  if (config.metrics != nullptr) ++config.metrics->counter("snapshot.sessions_built");
  {
    obs::ScopedTimer build_timer(config.metrics, "snapshot.session_build_seconds");
    try {
      built = std::make_unique<SnapshotSession>(config);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      --pools_[seed]->building;
      throw;
    }
  }
  SnapshotSession* session = built.get();
  std::lock_guard<std::mutex> lock(mutex_);
  SeedPool& pool = *pools_[seed];
  --pool.building;
  pool.sessions.push_back(std::move(built));
  return session;
}

void SnapshotStore::release(std::uint64_t seed, SnapshotSession* session) {
  std::lock_guard<std::mutex> lock(mutex_);
  pools_[seed]->idle.push_back(session);
}

bool SnapshotStore::eligible(const ScenarioConfig& config,
                             const std::vector<Strategy>& attacks) {
  if (config.faults != nullptr || config.inspector != nullptr) return false;
  if (attacks.empty()) return false;  // baselines run once; nothing to amortise
  const statemachine::StateMachine& machine = config.protocol == Protocol::kTcp
                                                  ? statemachine::tcp_state_machine()
                                                  : statemachine::dccp_state_machine();
  for (const Strategy& s : attacks) {
    if (s.match_mode != MatchMode::kStateBased) return false;
    // A strategy targeting the watched endpoint's initial state can act from
    // the very first event (the proxy even fires such injections at arm
    // time); enter hooks never see the initial entry, so there is no valid
    // cut for it.
    if (s.target_state == machine.initial_state(watched_role(s))) return false;
  }
  return true;
}

std::optional<RunMetrics> SnapshotStore::run_trial(
    const ScenarioConfig& config, const std::vector<Strategy>& attacks) {
  obs::MetricsRegistry* reg = config.metrics;
  if (!eligible(config, attacks)) {
    if (reg != nullptr) ++reg->counter("snapshot.ineligible_runs");
    return std::nullopt;
  }
  SnapshotSession* session = acquire(config.seed, config);
  if (session == nullptr) {
    // Pool contention, not ineligibility: a from-zero run is bit-identical,
    // so the fallback only costs wall-clock.
    if (reg != nullptr) {
      ++reg->counter("snapshot.pool_exhausted");
      ++reg->counter("snapshot.fallback_runs");
    }
    return std::nullopt;
  }
  std::optional<RunMetrics> forked;
  try {
    forked = session->serve(config, attacks);
  } catch (...) {
    release(config.seed, session);  // serve marked it bad; it declines from now on
    throw;
  }
  release(config.seed, session);
  if (!forked.has_value()) {
    if (reg != nullptr) ++reg->counter("snapshot.fallback_runs");
    return std::nullopt;
  }
  if (reg != nullptr) ++reg->counter("snapshot.forked_runs");

  if (selfcheck_) {
    // Differential oracle: replay the identical trial from zero in a private
    // arena and demand byte-identical RunMetrics JSON. The replay must not
    // double-count observability, so it runs without a registry. One arena
    // serves the whole store, so selfcheck serializes across executors —
    // it is a testing aid, not a production path.
    std::lock_guard<std::mutex> lock(selfcheck_mutex_);
    if (!verify_arena_.has_value()) verify_arena_.emplace();
    ScenarioConfig replay = config;
    replay.metrics = nullptr;
    RunMetrics plain = run_scenario(*verify_arena_, replay, attacks);
    obs::JsonWriter w1, w2;
    write_json(w1, *forked);
    write_json(w2, plain);
    if (w1.take() != w2.take()) {
      ++violations_;
      if (reg != nullptr) ++reg->counter("snapshot.selfcheck_violations");
      return plain;
    }
  }
  return forked;
}

}  // namespace snake::core
