#include "snake/controller.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "obs/json.h"
#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "snake/arena.h"
#include "statemachine/protocol_specs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace snake::core {

namespace {

const packet::HeaderFormat& format_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? packet::tcp_format() : packet::dccp_format();
}

const statemachine::StateMachine& machine_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? statemachine::tcp_state_machine()
                                    : statemachine::dccp_state_machine();
}

/// Tallies *why* a run was flagged, using the same threshold detection used.
/// The reason strings in Detection are for humans; these counters are the
/// machine-readable aggregate.
void count_detection_reasons(obs::MetricsRegistry* reg, const Detection& d,
                             double threshold) {
  if (reg == nullptr || !d.is_attack) return;
  if (d.target_ratio <= threshold) ++reg->counter("campaign.reason.target_throughput_down");
  if (d.target_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.target_throughput_up");
  if (d.competing_ratio <= threshold)
    ++reg->counter("campaign.reason.competing_throughput_down");
  if (d.competing_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.competing_throughput_up");
  if (d.resource_exhaustion) ++reg->counter("campaign.reason.resource_exhaustion");
}

void write_detection_json(obs::JsonWriter& w, const Detection& d) {
  w.begin_object();
  w.key("is_attack").value(d.is_attack);
  w.key("target_ratio").value(d.target_ratio);
  w.key("competing_ratio").value(d.competing_ratio);
  w.key("resource_exhaustion").value(d.resource_exhaustion);
  w.key("reasons").begin_array();
  for (const std::string& r : d.reasons) w.value(r);
  w.end_array();
  w.end_object();
}

void write_baseline_json(obs::JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.key("target_bytes").value(m.target_bytes);
  w.key("competing_bytes").value(m.competing_bytes);
  w.key("target_established").value(m.target_established);
  w.key("competing_established").value(m.competing_established);
  w.key("target_reset").value(m.target_reset);
  w.key("competing_reset").value(m.competing_reset);
  w.key("server1_stuck_sockets").value(static_cast<std::uint64_t>(m.server1_stuck_sockets));
  w.key("server2_stuck_sockets").value(static_cast<std::uint64_t>(m.server2_stuck_sockets));
  w.end_object();
}

}  // namespace

std::string table1_header() {
  return str_format("%-12s %-12s %10s %10s %10s %10s %10s %8s", "Protocol", "Impl",
                    "Tried", "Found", "On-path", "FalsePos", "TrueStrat", "Attacks");
}

std::string CampaignResult::summary_row() const {
  return str_format("%-12s %-12s %10llu %10llu %10llu %10llu %10llu %8llu",
                    protocol == Protocol::kTcp ? "TCP" : "DCCP", implementation.c_str(),
                    (unsigned long long)strategies_tried,
                    (unsigned long long)attack_strategies_found, (unsigned long long)on_path,
                    (unsigned long long)false_positives,
                    (unsigned long long)true_attack_strategies,
                    (unsigned long long)unique_true_attacks);
}

std::string CampaignResult::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.take();
}

void CampaignResult::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("snake-campaign-report/v1");
  w.key("protocol").value(to_string(protocol));
  w.key("implementation").value(implementation);
  w.key("table1").begin_object();
  w.key("strategies_tried").value(strategies_tried);
  w.key("attack_strategies_found").value(attack_strategies_found);
  w.key("on_path").value(on_path);
  w.key("false_positives").value(false_positives);
  w.key("true_attack_strategies").value(true_attack_strategies);
  w.key("unique_true_attacks").value(unique_true_attacks);
  w.end_object();
  w.key("baseline");
  write_baseline_json(w, baseline);
  w.key("outcomes").begin_array();
  for (const StrategyOutcome& o : found) {
    w.begin_object();
    w.key("strategy").value(o.strat.describe());
    w.key("class").value(to_string(o.cls));
    w.key("signature").value(o.signature);
    w.key("detection");
    write_detection_json(w, o.detection);
    w.end_object();
  }
  w.end_array();
  w.key("unique_signatures").begin_array();
  for (const std::string& sig : unique_signatures) w.value(sig);
  w.end_array();
  w.key("combinations").begin_object();
  w.key("tried").value(combinations_tried);
  w.key("stronger_than_parts").value(combinations_stronger);
  w.key("pairs").begin_array();
  for (const CombinedOutcome& c : combined) {
    w.begin_object();
    w.key("first").value(c.first.describe());
    w.key("second").value(c.second.describe());
    w.key("impact_score").value(c.impact_score);
    w.key("best_single_score").value(c.best_single_score);
    w.key("stronger_than_parts").value(c.stronger_than_parts);
    w.key("detection");
    write_detection_json(w, c.detection);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("metrics");
  metrics.write_json(w);
  w.end_object();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const packet::HeaderFormat& format = format_for(config.scenario.protocol);
  const statemachine::StateMachine& machine = machine_for(config.scenario.protocol);
  strategy::StrategyGenerator generator(format, machine, config.generator);
  const double threshold = config.detect_threshold;
  const int n = std::max(1, config.executors);

  CampaignResult result;
  result.protocol = config.scenario.protocol;
  result.implementation = config.scenario.protocol == Protocol::kTcp
                              ? config.scenario.tcp_profile.name
                              : "linux-3.13";

  // Per-executor registries plus one for the main thread (baselines and the
  // combination phase); merged into result.metrics at the end so the sim
  // hot path never shares a metrics slot across threads.
  obs::MetricsRegistry main_registry;
  std::vector<obs::MetricsRegistry> executor_registries(static_cast<std::size_t>(n));
  obs::MetricsRegistry* main_reg = config.collect_metrics ? &main_registry : nullptr;

  // Non-attack baselines, one per seed used ("runs a non-attack test").
  ScenarioConfig base_scenario = config.scenario;
  base_scenario.metrics = main_reg;
  ScenarioConfig retest_scenario = base_scenario;
  retest_scenario.seed += config.retest_seed_offset;
  // The main thread's arena serves the baselines now and the combination
  // phase later; each worker owns its own (arenas are single-threaded).
  ScenarioArena main_arena;
  RunMetrics baseline;
  RunMetrics retest_baseline;
  {
    obs::ScopedTimer timer(main_reg, "campaign.baseline_seconds");
    baseline = run_scenario(main_arena, base_scenario, std::nullopt);
    retest_baseline = run_scenario(main_arena, retest_scenario, std::nullopt);
  }
  result.baseline = baseline;

  // Work queue, fed up front with every off-path strategy and incrementally
  // with (type, state) strategies from observed traffic.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<strategy::Strategy> queue;
  std::uint64_t queued_total = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  int active = 0;

  // Batches are shuffled (deterministically) before queueing so a capped
  // campaign samples across attack categories instead of exhausting the
  // generator's emission order.
  std::mt19937_64 shuffle_rng(config.scenario.seed * 1000003 + 17);
  auto enqueue = [&](std::vector<strategy::Strategy> batch) {
    std::shuffle(batch.begin(), batch.end(), shuffle_rng);
    for (auto& s : batch) {
      queue.push_back(std::move(s));
      ++queued_total;
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    // Malicious-client strategies from the baseline's observations first,
    // then the full off-path sweep.
    enqueue(generator.on_observations(baseline.client_observations,
                                      baseline.server_observations));
    enqueue(generator.off_path_strategies());
  }

  auto worker = [&](obs::MetricsRegistry* reg) {
    // Thread-private scenario configs pointing at this executor's registry,
    // plus the executor's arena: network and stacks built once, reset
    // between trials.
    ScenarioArena arena;
    ScenarioConfig run_config = config.scenario;
    run_config.metrics = reg;
    ScenarioConfig retest_config = run_config;
    retest_config.seed += config.retest_seed_offset;

    while (true) {
      strategy::Strategy strat;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !queue.empty() || active == 0; });
        if (queue.empty()) {
          if (active == 0) return;
          continue;
        }
        if (config.max_strategies != 0 && started >= config.max_strategies) {
          queue.clear();
          if (active == 0) {
            cv.notify_all();
            return;
          }
          continue;
        }
        strat = std::move(queue.front());
        queue.pop_front();
        ++started;
        ++active;
      }

      obs::ScopedTimer strategy_timer(reg, "campaign.strategy_seconds");
      RunMetrics run = run_scenario(arena, run_config, strat);
      Detection first = detect(baseline, run, threshold);
      count_detection_reasons(reg, first, threshold);

      std::optional<StrategyOutcome> outcome;
      if (first.is_attack) {
        if (reg != nullptr) ++reg->counter("campaign.detected_first_pass");
        // Repeatability check under a different seed.
        obs::ScopedTimer retest_timer(reg, "campaign.retest_seconds");
        RunMetrics again = run_scenario(arena, retest_config, strat);
        Detection second = detect(retest_baseline, again, threshold);
        if (second.is_attack) {
          if (reg != nullptr) ++reg->counter("campaign.retest_confirmed");
          StrategyOutcome o;
          o.strat = strat;
          o.detection = first;
          o.cls = classify(strat, format, first, run);
          o.signature = attack_signature(strat, format, first, run, threshold);
          outcome = std::move(o);
        } else if (reg != nullptr) {
          ++reg->counter("campaign.retest_rejected");
        }
      }
      strategy_timer.stop();

      // Commit under the lock, but snapshot the progress numbers and leave
      // before invoking the user callback: a callback that blocks (or
      // re-enters campaign-adjacent locks) must not stall the whole pool.
      std::uint64_t progress_done = 0;
      std::uint64_t progress_total = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++completed;
        --active;
        // Feedback: states/types observed during this run may unlock new
        // (type, state) targets.
        enqueue(generator.on_observations(run.client_observations,
                                          run.server_observations));
        if (outcome.has_value()) result.found.push_back(std::move(*outcome));
        progress_done = completed;
        progress_total = queued_total;
      }
      cv.notify_all();
      if (config.on_progress) config.on_progress(progress_done, progress_total);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads.emplace_back(worker, config.collect_metrics
                                     ? &executor_registries[static_cast<std::size_t>(i)]
                                     : nullptr);
  for (auto& t : threads) t.join();

  result.strategies_tried = started;

  std::set<std::string> unique;
  for (const StrategyOutcome& o : result.found) {
    ++result.attack_strategies_found;
    switch (o.cls) {
      case AttackClass::kOnPath:
        ++result.on_path;
        break;
      case AttackClass::kFalsePositive:
        ++result.false_positives;
        break;
      case AttackClass::kTrueAttack:
        ++result.true_attack_strategies;
        unique.insert(o.signature);
        break;
    }
  }
  result.unique_true_attacks = unique.size();
  result.unique_signatures.assign(unique.begin(), unique.end());

  // ---- Combination phase (optional): pair the strongest distinct true
  // attacks and test whether any pair beats both of its components.
  if (config.combine_top >= 2 && !result.found.empty()) {
    obs::ScopedTimer combine_timer(main_reg, "campaign.combination_seconds");
    std::vector<const StrategyOutcome*> ranked;
    std::set<std::string> taken;
    for (const StrategyOutcome& o : result.found)
      if (o.cls == AttackClass::kTrueAttack) ranked.push_back(&o);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      return impact_score(a->detection) > impact_score(b->detection);
    });
    std::vector<const StrategyOutcome*> top;
    for (const StrategyOutcome* o : ranked) {
      if (taken.contains(o->signature)) continue;
      taken.insert(o->signature);
      top.push_back(o);
      if (top.size() >= config.combine_top) break;
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      for (std::size_t j = i + 1; j < top.size(); ++j) {
        std::vector<strategy::Strategy> pair = {top[i]->strat, top[j]->strat};
        RunMetrics run = run_scenario(main_arena, base_scenario, pair);
        Detection d = detect(baseline, run, threshold);
        count_detection_reasons(main_reg, d, threshold);
        ++result.combinations_tried;
        CombinedOutcome c;
        c.first = top[i]->strat;
        c.second = top[j]->strat;
        c.detection = d;
        c.impact_score = impact_score(d);
        c.best_single_score =
            std::max(impact_score(top[i]->detection), impact_score(top[j]->detection));
        c.stronger_than_parts = c.impact_score > c.best_single_score + 1e-9;
        if (c.stronger_than_parts) ++result.combinations_stronger;
        result.combined.push_back(std::move(c));
      }
    }
  }

  if (config.collect_metrics) {
    result.metrics.merge_from(main_registry);
    for (const obs::MetricsRegistry& reg : executor_registries)
      result.metrics.merge_from(reg);
    result.metrics.counter("campaign.strategies_tried") += result.strategies_tried;
    result.metrics.gauge("campaign.detect_threshold") = threshold;
  }
  return result;
}

}  // namespace snake::core
