#include "snake/controller.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <set>

#include "obs/json.h"
#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "snake/arena.h"
#include "snake/backend.h"
#include "snake/trial_runner.h"
#include "statemachine/protocol_specs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace snake::core {

const packet::HeaderFormat& format_for_protocol(Protocol protocol) {
  return protocol == Protocol::kTcp ? packet::tcp_format() : packet::dccp_format();
}

const statemachine::StateMachine& machine_for_protocol(Protocol protocol) {
  return protocol == Protocol::kTcp ? statemachine::tcp_state_machine()
                                    : statemachine::dccp_state_machine();
}

void count_detection_reasons(obs::MetricsRegistry* reg, const Detection& d,
                             double threshold) {
  if (reg == nullptr || !d.is_attack) return;
  if (d.target_ratio <= threshold) ++reg->counter("campaign.reason.target_throughput_down");
  if (d.target_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.target_throughput_up");
  if (d.competing_ratio <= threshold)
    ++reg->counter("campaign.reason.competing_throughput_down");
  if (d.competing_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.competing_throughput_up");
  if (d.resource_exhaustion) ++reg->counter("campaign.reason.resource_exhaustion");
}

namespace {

const TrialRecord* find_record(const JournalSnapshot& snapshot, const std::string& key) {
  auto it = snapshot.trials.find(key);
  return it == snapshot.trials.end() ? nullptr : &it->second;
}

void write_baseline_json(obs::JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.key("target_bytes").value(m.target_bytes);
  w.key("competing_bytes").value(m.competing_bytes);
  w.key("target_established").value(m.target_established);
  w.key("competing_established").value(m.competing_established);
  w.key("target_reset").value(m.target_reset);
  w.key("competing_reset").value(m.competing_reset);
  w.key("server1_stuck_sockets").value(static_cast<std::uint64_t>(m.server1_stuck_sockets));
  w.key("server2_stuck_sockets").value(static_cast<std::uint64_t>(m.server2_stuck_sockets));
  w.end_object();
}

/// Rebuilds the tracker-observation form on_observations consumes from the
/// journaled (state, packet type) send-pairs. The generator ignores
/// receive-events and dedups internally, so feeding the deduplicated list —
/// whether the trial ran live, was replayed from a journal or cache, or
/// crossed a process boundary — reproduces its output verbatim.
std::vector<statemachine::EndpointTracker::Observation> feedback_observations(
    const std::vector<JournalObservation>& pairs) {
  std::vector<statemachine::EndpointTracker::Observation> out;
  out.reserve(pairs.size());
  for (const JournalObservation& o : pairs)
    out.push_back({o.state, o.packet_type, statemachine::TriggerKind::kSend});
  return out;
}

/// Where a committed trial record came from; decides which tallies move and
/// whether the record is journaled/cached.
enum class TrialSource { kLive, kResume, kCache };

}  // namespace

std::string table1_header() {
  return str_format("%-12s %-12s %10s %10s %10s %10s %10s %8s", "Protocol", "Impl",
                    "Tried", "Found", "On-path", "FalsePos", "TrueStrat", "Attacks");
}

std::string CampaignResult::summary_row() const {
  return str_format("%-12s %-12s %10llu %10llu %10llu %10llu %10llu %8llu",
                    protocol == Protocol::kTcp ? "TCP" : "DCCP", implementation.c_str(),
                    (unsigned long long)strategies_tried,
                    (unsigned long long)attack_strategies_found, (unsigned long long)on_path,
                    (unsigned long long)false_positives,
                    (unsigned long long)true_attack_strategies,
                    (unsigned long long)unique_true_attacks);
}

std::string CampaignResult::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.take();
}

void CampaignResult::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("snake-campaign-report/v1");
  w.key("protocol").value(to_string(protocol));
  w.key("implementation").value(implementation);
  w.key("table1").begin_object();
  w.key("strategies_tried").value(strategies_tried);
  w.key("attack_strategies_found").value(attack_strategies_found);
  w.key("on_path").value(on_path);
  w.key("false_positives").value(false_positives);
  w.key("true_attack_strategies").value(true_attack_strategies);
  w.key("unique_true_attacks").value(unique_true_attacks);
  w.end_object();
  w.key("baseline");
  write_baseline_json(w, baseline);
  w.key("outcomes").begin_array();
  for (const StrategyOutcome& o : found) {
    w.begin_object();
    w.key("strategy").value(o.strat.describe());
    w.key("class").value(to_string(o.cls));
    w.key("signature").value(o.signature);
    w.key("detection");
    core::write_json(w, o.detection);
    w.end_object();
  }
  w.end_array();
  w.key("unique_signatures").begin_array();
  for (const std::string& sig : unique_signatures) w.value(sig);
  w.end_array();
  w.key("combinations").begin_object();
  w.key("tried").value(combinations_tried);
  w.key("stronger_than_parts").value(combinations_stronger);
  w.key("pairs").begin_array();
  for (const CombinedOutcome& c : combined) {
    w.begin_object();
    w.key("first").value(c.first.describe());
    w.key("second").value(c.second.describe());
    w.key("impact_score").value(c.impact_score);
    w.key("best_single_score").value(c.best_single_score);
    w.key("stronger_than_parts").value(c.stronger_than_parts);
    w.key("detection");
    core::write_json(w, c.detection);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("resilience").begin_object();
  w.key("trials_aborted").value(trials_aborted);
  w.key("trials_errored").value(trials_errored);
  w.key("trials_retried").value(trials_retried);
  w.key("strategies_quarantined").value(static_cast<std::uint64_t>(quarantined.size()));
  w.key("resume_skipped").value(resume_skipped);
  w.key("journal_errors").value(journal_errors);
  w.key("quarantined").begin_array();
  for (const Quarantined& q : quarantined) {
    w.begin_object();
    w.key("strategy").value(q.strat.describe());
    w.key("key").value(q.key);
    w.key("verdict").value(to_string(q.verdict));
    w.key("attempts").value(static_cast<std::uint64_t>(q.attempts));
    w.key("reason").value(q.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache_hits);
  w.key("stores").value(cache_stores);
  w.end_object();
  w.key("search").begin_object();
  w.key("mode").value(search::to_string(search_mode));
  w.key("trials_to_first_attack").value(trials_to_first_attack);
  w.key("rounds").value(search_rounds);
  w.key("mutations").value(search_mutations);
  w.end_object();
  w.key("metrics");
  metrics.write_json(w);
  w.end_object();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const packet::HeaderFormat& format = format_for_protocol(config.scenario.protocol);
  const statemachine::StateMachine& machine = machine_for_protocol(config.scenario.protocol);
  strategy::StrategyGenerator generator(format, machine, config.generator);
  const double threshold = config.detect_threshold;

  CampaignResult result;
  result.protocol = config.scenario.protocol;
  result.implementation = config.scenario.protocol == Protocol::kTcp
                              ? config.scenario.tcp_profile.name
                              : "linux-3.13";
  result.search_mode = config.search_mode;

  // Greybox search engine (null in grid mode). Driven exclusively from the
  // commit path and the drain barrier below, which both run in deterministic
  // order whatever the backend — see the determinism contract in
  // search/search.h.
  std::unique_ptr<search::SearchEngine> engine;
  if (config.search_mode == search::SearchMode::kGreybox)
    engine = std::make_unique<search::SearchEngine>(config.search, config.scenario.seed,
                                                    format, machine);

  // The coordinator's registry (baselines, commit path, combination phase);
  // backends keep per-executor registries and fold them in at finish(), so
  // the sim hot path never shares a metrics slot across threads.
  obs::MetricsRegistry main_registry;
  obs::MetricsRegistry* main_reg = config.collect_metrics ? &main_registry : nullptr;

  // Resume: an incompatible snapshot (different protocol / implementation /
  // seed / threshold / duration) would silently mix outcomes from a
  // different campaign — ignore it and run everything live.
  const JournalSnapshot* resume = config.resume;
  if (resume != nullptr && !resume->compatible_with(config)) {
    if (main_reg != nullptr) ++main_reg->counter("campaign.resume_incompatible");
    resume = nullptr;
  }
  // Validate the resumed journal's last pool checkpoint through the strict
  // search-library parser. A torn or poisoned checkpoint is rejected and
  // counted; correctness is unaffected either way, because the resumed
  // engine is reconstructed by replaying the journaled trials in order.
  if (resume != nullptr && engine != nullptr && !resume->search_pool_json.empty()) {
    if (search::pool_state_from_text(resume->search_pool_json).has_value()) {
      if (main_reg != nullptr) ++main_reg->counter("campaign.search_pool_resumed");
    } else {
      if (main_reg != nullptr) ++main_reg->counter("campaign.search_pool_invalid");
    }
  }
  if (config.journal != nullptr && config.resume == nullptr) {
    try {
      config.journal->write_header(config);
    } catch (...) {
      ++result.journal_errors;
      if (main_reg != nullptr) ++main_reg->counter("campaign.journal_errors");
    }
  }

  // Non-attack baselines, one per seed used ("runs a non-attack test").
  // Fault rules are keyed by strategy id and target trials; the baselines
  // (and the combination phase, which reuses these configs) run clean.
  ScenarioConfig base_scenario = config.scenario;
  base_scenario.metrics = main_reg;
  base_scenario.faults = nullptr;
  // Baselines take the same early-exit cut as trials: the detector compares
  // their byte counts against trial byte counts, so both sides must be
  // measured under the same run driver.
  base_scenario.early_exit = config.early_exit;
  ScenarioConfig retest_scenario = base_scenario;
  retest_scenario.seed += config.retest_seed_offset;
  // The coordinator's arena serves the baselines now and the combination
  // phase later; each executor owns its own (arenas are single-threaded).
  ScenarioArena main_arena;
  RunMetrics baseline;
  RunMetrics retest_baseline;
  {
    obs::ScopedTimer timer(main_reg, "campaign.baseline_seconds");
    baseline = run_scenario(main_arena, base_scenario, std::nullopt);
    retest_baseline = run_scenario(main_arena, retest_scenario, std::nullopt);
  }
  result.baseline = baseline;

  // Work queue, fed up front with every off-path strategy and incrementally
  // with (type, state) strategies committed from trial feedback. Only the
  // coordinating thread touches it.
  std::deque<strategy::Strategy> queue;
  std::uint64_t queued_total = 0;

  // Batches are shuffled (deterministically) before queueing so a capped
  // campaign samples across attack categories instead of exhausting the
  // generator's emission order.
  std::mt19937_64 shuffle_rng(config.scenario.seed * 1000003 + 17);
  auto enqueue = [&](std::vector<strategy::Strategy> batch) {
    if (engine != nullptr) {
      // Greybox: generator output becomes the engine's unexplored universe;
      // strategies enter the dispatch queue in engine-chosen rounds instead.
      engine->offer(std::move(batch));
      return;
    }
    std::shuffle(batch.begin(), batch.end(), shuffle_rng);
    for (auto& s : batch) {
      queue.push_back(std::move(s));
      ++queued_total;
    }
  };

  // Malicious-client strategies from the baseline's observations first,
  // then the full off-path sweep.
  enqueue(generator.on_observations(baseline.client_observations,
                                    baseline.server_observations));
  enqueue(generator.off_path_strategies());

  // Trial backend: the caller's (worker processes, say), falling back to the
  // in-process pool when absent or failing to start.
  std::unique_ptr<ThreadBackend> local_backend;
  TrialBackend* backend = config.backend;
  if (backend == nullptr || !backend->start(config, baseline, retest_baseline)) {
    if (backend != nullptr) {
      backend->finish(nullptr);
      if (main_reg != nullptr) ++main_reg->counter("campaign.backend_fallback");
    }
    local_backend = std::make_unique<ThreadBackend>(config.executors);
    local_backend->start(config, baseline, retest_baseline);
    backend = local_backend.get();
  }

  // ---- The deterministic dispatch/commit loop. Trials are numbered in
  // dispatch order and committed strictly in that order, whatever order the
  // backend finishes them in: generator feedback, the queue-shuffling RNG,
  // journal appends and result accumulation all observe the same sequence a
  // one-executor campaign would, so the outcome is a pure function of the
  // seed for every backend and executor count.
  struct Pending {
    TrialRecord record;
    strategy::Strategy strat;
    TrialSource source = TrialSource::kLive;
  };
  std::map<std::uint64_t, Pending> pending;               // finished, awaiting commit
  std::map<std::uint64_t, strategy::Strategy> in_flight;  // submitted to the backend
  std::uint64_t dispatched = 0;
  std::uint64_t committed = 0;
  // Send-pairs already fed back, so the backend broadcast carries each
  // newly covered pair once.
  std::set<std::pair<std::string, std::string>> covered_pairs;

  auto dispatch_one = [&]() {
    strategy::Strategy strat = std::move(queue.front());
    queue.pop_front();
    const std::uint64_t seq = dispatched++;
    const std::string key = strategy::canonical_key(strat);

    if (const TrialRecord* prior = resume != nullptr ? find_record(*resume, key) : nullptr;
        prior != nullptr) {
      // Resume fast path: replay the journaled outcome — detection payload,
      // failure tallies, and the generator feedback — without running the
      // simulation.
      if (main_reg != nullptr) ++main_reg->counter("campaign.resume_skipped");
      pending.emplace(seq, Pending{*prior, std::move(strat), TrialSource::kResume});
      return;
    }
    if (config.cache != nullptr) {
      if (const TrialRecord* hit = config.cache->lookup(key); hit != nullptr) {
        // Cross-campaign cache hit: same replay discipline as resume.
        if (main_reg != nullptr) ++main_reg->counter("campaign.cache_hits");
        pending.emplace(seq, Pending{*hit, std::move(strat), TrialSource::kCache});
        return;
      }
    }
    TrialTask task;
    task.seq = seq;
    task.strat = strat;
    in_flight.emplace(seq, std::move(strat));
    backend->submit(std::move(task));
  };

  // Appends the engine's serialized pool state to the journal as its own
  // line. Best-effort like trial appends: the journal is a checkpoint, the
  // campaign result is not allowed to depend on it.
  auto checkpoint_pool = [&]() {
    if (engine == nullptr || config.journal == nullptr) return;
    try {
      obs::JsonWriter w;
      search::write_json(w, engine->state());
      config.journal->append_raw(w.take());
    } catch (...) {
      ++result.journal_errors;
      if (main_reg != nullptr) ++main_reg->counter("campaign.journal_errors");
    }
  };

  auto commit_one = [&](Pending p) {
    TrialRecord& record = p.record;
    result.trials_aborted += record.aborted_attempts;
    result.trials_errored += record.errored_attempts;
    result.trials_retried += record.attempts - 1;
    if (p.source == TrialSource::kResume) ++result.resume_skipped;
    if (p.source == TrialSource::kCache) ++result.cache_hits;

    // Checkpoint (resume replays are already in this journal). Best-effort:
    // the results matter, the checkpoint does not.
    if (p.source != TrialSource::kResume && config.journal != nullptr) {
      try {
        config.journal->append(record);
      } catch (...) {
        ++result.journal_errors;
        if (main_reg != nullptr) ++main_reg->counter("campaign.journal_errors");
      }
    }
    // Memoize fresh verdicts for future campaigns.
    if (p.source == TrialSource::kLive && config.cache != nullptr) {
      try {
        config.cache->store(record);
        ++result.cache_stores;
        if (main_reg != nullptr) ++main_reg->counter("campaign.cache_stores");
      } catch (...) {
        if (main_reg != nullptr) ++main_reg->counter("campaign.cache_errors");
      }
    }

    if (record.verdict == TrialVerdict::kCompleted) {
      // Feedback: states/types observed during this run may unlock new
      // (type, state) targets.
      enqueue(generator.on_observations(feedback_observations(record.client_obs),
                                        feedback_observations(record.server_obs)));
      std::vector<JournalObservation> fresh;
      for (const std::vector<JournalObservation>* o :
           {&record.client_obs, &record.server_obs})
        for (const JournalObservation& pair : *o)
          if (covered_pairs.emplace(pair.state, pair.packet_type).second)
            fresh.push_back(pair);
      if (!fresh.empty()) backend->on_feedback(fresh);
      if (engine != nullptr) {
        // Greybox fitness feedback. Every ingredient is derived from the
        // committed record and the monotone covered-pair set, so a replayed
        // trial (resume, warm cache) feeds back exactly what the live run
        // did — which is what keeps warm and cold greybox campaigns
        // bit-identical.
        search::TrialFeedback feedback;
        feedback.completed = true;
        feedback.found = record.found;
        feedback.margin = record.found ? impact_score(record.detection) : 0.0;
        feedback.fresh_pairs.reserve(fresh.size());
        for (const JournalObservation& pair : fresh)
          feedback.fresh_pairs.emplace_back(pair.state, pair.packet_type);
        engine->on_result(p.strat, feedback);
      }
      if (record.found) {
        if (result.trials_to_first_attack == 0)
          result.trials_to_first_attack = committed + 1;
        StrategyOutcome o;
        o.strat = std::move(p.strat);
        o.detection = record.detection;
        o.cls = record.cls;
        o.signature = record.signature;
        result.found.push_back(std::move(o));
      }
    } else {
      // Quarantined strategies score zero fitness but still advance the
      // engine's trial counter, keeping checkpoints consistent.
      if (engine != nullptr) engine->on_result(p.strat, search::TrialFeedback{});
      CampaignResult::Quarantined q;
      q.strat = std::move(p.strat);
      q.key = std::move(record.key);
      q.verdict = record.verdict;
      q.attempts = record.attempts;
      q.reason = std::move(record.failure_reason);
      result.quarantined.push_back(std::move(q));
    }
    ++committed;
    if (engine != nullptr && config.search.checkpoint_interval != 0 &&
        committed % config.search.checkpoint_interval == 0)
      checkpoint_pool();
    if (config.on_progress) config.on_progress(committed, queued_total);
  };

  while (true) {
    // Dispatch ahead while there is queue and backend capacity; replayed
    // trials (resume/cache) go straight to the commit buffer.
    while (!queue.empty() && in_flight.size() < backend->capacity()) {
      if (config.max_strategies != 0 && dispatched >= config.max_strategies) {
        queue.clear();
        break;
      }
      dispatch_one();
    }
    if (config.max_strategies != 0 && dispatched >= config.max_strategies) queue.clear();

    // Commit everything contiguous from the committed watermark.
    bool committed_any = false;
    while (true) {
      auto it = pending.find(committed);
      if (it == pending.end()) break;
      Pending p = std::move(it->second);
      pending.erase(it);
      commit_one(std::move(p));
      committed_any = true;
    }
    if (committed_any) continue;  // feedback may have refilled the queue

    if (in_flight.empty()) {
      if (queue.empty()) {
        // Greybox drain barrier: every dispatched trial is committed, so the
        // engine has complete feedback. Pull the next round here — and only
        // here — so the round composition is a pure function of committed
        // results, independent of backend capacity or outcome timing.
        if (engine != nullptr &&
            (config.max_strategies == 0 || dispatched < config.max_strategies)) {
          std::vector<strategy::Strategy> round = engine->next_round();
          if (!round.empty()) {
            for (auto& s : round) {
              queue.push_back(std::move(s));
              ++queued_total;
            }
            continue;
          }
        }
        break;  // drained: every dispatched trial committed, search exhausted
      }
      continue;  // more queue, capacity freed up
    }
    TrialOutcome out = backend->wait_outcome();
    auto it = in_flight.find(out.seq);
    if (it == in_flight.end()) {
      // A backend must hand back exactly the seqs it was given; anything
      // else (a confused worker resent a result) is dropped, not committed.
      if (main_reg != nullptr) ++main_reg->counter("campaign.backend_bad_seq");
      continue;
    }
    pending.emplace(out.seq, Pending{std::move(out.record), std::move(it->second),
                                     TrialSource::kLive});
    in_flight.erase(it);
  }

  backend->finish(config.collect_metrics ? &result.metrics : nullptr);
  result.strategies_tried = dispatched;
  if (engine != nullptr) {
    checkpoint_pool();  // final pool state, whatever the periodic cadence
    result.search_rounds = engine->rounds();
    result.search_mutations = engine->mutations_spawned();
  }

  // Quarantine commits happen in dispatch order already, but sort by
  // canonical key so reports stay comparable with historic journals and
  // independent of queue composition.
  std::sort(result.quarantined.begin(), result.quarantined.end(),
            [](const CampaignResult::Quarantined& a, const CampaignResult::Quarantined& b) {
              return a.key < b.key;
            });

  std::set<std::string> unique;
  for (const StrategyOutcome& o : result.found) {
    ++result.attack_strategies_found;
    switch (o.cls) {
      case AttackClass::kOnPath:
        ++result.on_path;
        break;
      case AttackClass::kFalsePositive:
        ++result.false_positives;
        break;
      case AttackClass::kTrueAttack:
        ++result.true_attack_strategies;
        unique.insert(o.signature);
        break;
    }
  }
  result.unique_true_attacks = unique.size();
  result.unique_signatures.assign(unique.begin(), unique.end());

  // ---- Combination phase (optional): pair the strongest distinct true
  // attacks and test whether any pair beats both of its components.
  if (config.combine_top >= 2 && !result.found.empty()) {
    obs::ScopedTimer combine_timer(main_reg, "campaign.combination_seconds");
    std::vector<const StrategyOutcome*> ranked;
    std::set<std::string> taken;
    for (const StrategyOutcome& o : result.found)
      if (o.cls == AttackClass::kTrueAttack) ranked.push_back(&o);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      return impact_score(a->detection) > impact_score(b->detection);
    });
    std::vector<const StrategyOutcome*> top;
    for (const StrategyOutcome* o : ranked) {
      if (taken.contains(o->signature)) continue;
      taken.insert(o->signature);
      top.push_back(o);
      if (top.size() >= config.combine_top) break;
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      for (std::size_t j = i + 1; j < top.size(); ++j) {
        std::vector<strategy::Strategy> pair = {top[i]->strat, top[j]->strat};
        RunMetrics run = run_scenario(main_arena, base_scenario, pair);
        Detection d = detect(baseline, run, threshold);
        count_detection_reasons(main_reg, d, threshold);
        ++result.combinations_tried;
        CombinedOutcome c;
        c.first = top[i]->strat;
        c.second = top[j]->strat;
        c.detection = d;
        c.impact_score = impact_score(d);
        c.best_single_score =
            std::max(impact_score(top[i]->detection), impact_score(top[j]->detection));
        c.stronger_than_parts = c.impact_score > c.best_single_score + 1e-9;
        if (c.stronger_than_parts) ++result.combinations_stronger;
        result.combined.push_back(std::move(c));
      }
    }
  }

  if (config.collect_metrics) {
    result.metrics.merge_from(main_registry);
    result.metrics.counter("campaign.strategies_tried") += result.strategies_tried;
    result.metrics.gauge("campaign.detect_threshold") = threshold;
    if (engine != nullptr) {
      result.metrics.counter("campaign.search_rounds") += result.search_rounds;
      result.metrics.counter("campaign.search_mutations") += result.search_mutations;
    }
  }
  return result;
}

}  // namespace snake::core
