#include "snake/controller.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "obs/json.h"
#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "snake/arena.h"
#include "statemachine/protocol_specs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace snake::core {

namespace {

const packet::HeaderFormat& format_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? packet::tcp_format() : packet::dccp_format();
}

const statemachine::StateMachine& machine_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? statemachine::tcp_state_machine()
                                    : statemachine::dccp_state_machine();
}

/// Tallies *why* a run was flagged, using the same threshold detection used.
/// The reason strings in Detection are for humans; these counters are the
/// machine-readable aggregate.
void count_detection_reasons(obs::MetricsRegistry* reg, const Detection& d,
                             double threshold) {
  if (reg == nullptr || !d.is_attack) return;
  if (d.target_ratio <= threshold) ++reg->counter("campaign.reason.target_throughput_down");
  if (d.target_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.target_throughput_up");
  if (d.competing_ratio <= threshold)
    ++reg->counter("campaign.reason.competing_throughput_down");
  if (d.competing_ratio >= 1.0 + threshold)
    ++reg->counter("campaign.reason.competing_throughput_up");
  if (d.resource_exhaustion) ++reg->counter("campaign.reason.resource_exhaustion");
}

void write_detection_json(obs::JsonWriter& w, const Detection& d) {
  w.begin_object();
  w.key("is_attack").value(d.is_attack);
  w.key("target_ratio").value(d.target_ratio);
  w.key("competing_ratio").value(d.competing_ratio);
  w.key("resource_exhaustion").value(d.resource_exhaustion);
  w.key("reasons").begin_array();
  for (const std::string& r : d.reasons) w.value(r);
  w.end_array();
  w.end_object();
}

/// Converts a run's raw observation stream into the journaled form: the
/// deduplicated (state, packet type) *send* pairs in first-occurrence order.
/// This is exactly the subset StrategyGenerator::on_observations consumes
/// (it ignores receive-events and dedups via its covered set), so replaying
/// these pairs on resume reproduces the generator's output verbatim.
std::vector<JournalObservation> journal_observations(
    const std::vector<statemachine::EndpointTracker::Observation>& obs) {
  std::vector<JournalObservation> out;
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& o : obs) {
    if (o.direction != statemachine::TriggerKind::kSend) continue;
    if (!seen.emplace(o.state, o.packet_type).second) continue;
    out.push_back(JournalObservation{o.state, o.packet_type});
  }
  return out;
}

const TrialRecord* find_record(const JournalSnapshot& snapshot, const std::string& key) {
  auto it = snapshot.trials.find(key);
  return it == snapshot.trials.end() ? nullptr : &it->second;
}

void write_baseline_json(obs::JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.key("target_bytes").value(m.target_bytes);
  w.key("competing_bytes").value(m.competing_bytes);
  w.key("target_established").value(m.target_established);
  w.key("competing_established").value(m.competing_established);
  w.key("target_reset").value(m.target_reset);
  w.key("competing_reset").value(m.competing_reset);
  w.key("server1_stuck_sockets").value(static_cast<std::uint64_t>(m.server1_stuck_sockets));
  w.key("server2_stuck_sockets").value(static_cast<std::uint64_t>(m.server2_stuck_sockets));
  w.end_object();
}

}  // namespace

std::string table1_header() {
  return str_format("%-12s %-12s %10s %10s %10s %10s %10s %8s", "Protocol", "Impl",
                    "Tried", "Found", "On-path", "FalsePos", "TrueStrat", "Attacks");
}

std::string CampaignResult::summary_row() const {
  return str_format("%-12s %-12s %10llu %10llu %10llu %10llu %10llu %8llu",
                    protocol == Protocol::kTcp ? "TCP" : "DCCP", implementation.c_str(),
                    (unsigned long long)strategies_tried,
                    (unsigned long long)attack_strategies_found, (unsigned long long)on_path,
                    (unsigned long long)false_positives,
                    (unsigned long long)true_attack_strategies,
                    (unsigned long long)unique_true_attacks);
}

std::string CampaignResult::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.take();
}

void CampaignResult::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("snake-campaign-report/v1");
  w.key("protocol").value(to_string(protocol));
  w.key("implementation").value(implementation);
  w.key("table1").begin_object();
  w.key("strategies_tried").value(strategies_tried);
  w.key("attack_strategies_found").value(attack_strategies_found);
  w.key("on_path").value(on_path);
  w.key("false_positives").value(false_positives);
  w.key("true_attack_strategies").value(true_attack_strategies);
  w.key("unique_true_attacks").value(unique_true_attacks);
  w.end_object();
  w.key("baseline");
  write_baseline_json(w, baseline);
  w.key("outcomes").begin_array();
  for (const StrategyOutcome& o : found) {
    w.begin_object();
    w.key("strategy").value(o.strat.describe());
    w.key("class").value(to_string(o.cls));
    w.key("signature").value(o.signature);
    w.key("detection");
    write_detection_json(w, o.detection);
    w.end_object();
  }
  w.end_array();
  w.key("unique_signatures").begin_array();
  for (const std::string& sig : unique_signatures) w.value(sig);
  w.end_array();
  w.key("combinations").begin_object();
  w.key("tried").value(combinations_tried);
  w.key("stronger_than_parts").value(combinations_stronger);
  w.key("pairs").begin_array();
  for (const CombinedOutcome& c : combined) {
    w.begin_object();
    w.key("first").value(c.first.describe());
    w.key("second").value(c.second.describe());
    w.key("impact_score").value(c.impact_score);
    w.key("best_single_score").value(c.best_single_score);
    w.key("stronger_than_parts").value(c.stronger_than_parts);
    w.key("detection");
    write_detection_json(w, c.detection);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("resilience").begin_object();
  w.key("trials_aborted").value(trials_aborted);
  w.key("trials_errored").value(trials_errored);
  w.key("trials_retried").value(trials_retried);
  w.key("strategies_quarantined").value(static_cast<std::uint64_t>(quarantined.size()));
  w.key("resume_skipped").value(resume_skipped);
  w.key("journal_errors").value(journal_errors);
  w.key("quarantined").begin_array();
  for (const Quarantined& q : quarantined) {
    w.begin_object();
    w.key("strategy").value(q.strat.describe());
    w.key("key").value(q.key);
    w.key("verdict").value(to_string(q.verdict));
    w.key("attempts").value(static_cast<std::uint64_t>(q.attempts));
    w.key("reason").value(q.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("metrics");
  metrics.write_json(w);
  w.end_object();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const packet::HeaderFormat& format = format_for(config.scenario.protocol);
  const statemachine::StateMachine& machine = machine_for(config.scenario.protocol);
  strategy::StrategyGenerator generator(format, machine, config.generator);
  const double threshold = config.detect_threshold;
  const int n = std::max(1, config.executors);

  CampaignResult result;
  result.protocol = config.scenario.protocol;
  result.implementation = config.scenario.protocol == Protocol::kTcp
                              ? config.scenario.tcp_profile.name
                              : "linux-3.13";

  // Per-executor registries plus one for the main thread (baselines and the
  // combination phase); merged into result.metrics at the end so the sim
  // hot path never shares a metrics slot across threads.
  obs::MetricsRegistry main_registry;
  std::vector<obs::MetricsRegistry> executor_registries(static_cast<std::size_t>(n));
  obs::MetricsRegistry* main_reg = config.collect_metrics ? &main_registry : nullptr;

  // Resume: an incompatible snapshot (different protocol / implementation /
  // seed / threshold / duration) would silently mix outcomes from a
  // different campaign — ignore it and run everything live.
  const JournalSnapshot* resume = config.resume;
  if (resume != nullptr && !resume->compatible_with(config)) {
    if (main_reg != nullptr) ++main_reg->counter("campaign.resume_incompatible");
    resume = nullptr;
  }
  if (config.journal != nullptr && config.resume == nullptr) {
    try {
      config.journal->write_header(config);
    } catch (...) {
      ++result.journal_errors;
      if (main_reg != nullptr) ++main_reg->counter("campaign.journal_errors");
    }
  }

  // Non-attack baselines, one per seed used ("runs a non-attack test").
  // Fault rules are keyed by strategy id and target trials; the baselines
  // (and the combination phase, which reuses these configs) run clean.
  ScenarioConfig base_scenario = config.scenario;
  base_scenario.metrics = main_reg;
  base_scenario.faults = nullptr;
  ScenarioConfig retest_scenario = base_scenario;
  retest_scenario.seed += config.retest_seed_offset;
  // The main thread's arena serves the baselines now and the combination
  // phase later; each worker owns its own (arenas are single-threaded).
  ScenarioArena main_arena;
  RunMetrics baseline;
  RunMetrics retest_baseline;
  {
    obs::ScopedTimer timer(main_reg, "campaign.baseline_seconds");
    baseline = run_scenario(main_arena, base_scenario, std::nullopt);
    retest_baseline = run_scenario(main_arena, retest_scenario, std::nullopt);
  }
  result.baseline = baseline;

  // Work queue, fed up front with every off-path strategy and incrementally
  // with (type, state) strategies from observed traffic.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<strategy::Strategy> queue;
  std::uint64_t queued_total = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  int active = 0;

  // Batches are shuffled (deterministically) before queueing so a capped
  // campaign samples across attack categories instead of exhausting the
  // generator's emission order.
  std::mt19937_64 shuffle_rng(config.scenario.seed * 1000003 + 17);
  auto enqueue = [&](std::vector<strategy::Strategy> batch) {
    std::shuffle(batch.begin(), batch.end(), shuffle_rng);
    for (auto& s : batch) {
      queue.push_back(std::move(s));
      ++queued_total;
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    // Malicious-client strategies from the baseline's observations first,
    // then the full off-path sweep.
    enqueue(generator.on_observations(baseline.client_observations,
                                      baseline.server_observations));
    enqueue(generator.off_path_strategies());
  }

  auto worker = [&](obs::MetricsRegistry* reg) {
    // Thread-private scenario configs pointing at this executor's registry,
    // plus the executor's arena: network and stacks built once, reset
    // between trials.
    ScenarioArena arena;
    ScenarioConfig run_config = config.scenario;
    run_config.metrics = reg;
    ScenarioConfig retest_config = run_config;
    retest_config.seed += config.retest_seed_offset;
    const std::uint32_t max_attempts = std::max<std::uint32_t>(1, config.trial_attempts);

    while (true) {
      strategy::Strategy strat;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !queue.empty() || active == 0; });
        if (queue.empty()) {
          if (active == 0) return;
          continue;
        }
        if (config.max_strategies != 0 && started >= config.max_strategies) {
          queue.clear();
          if (active == 0) {
            cv.notify_all();
            return;
          }
          continue;
        }
        strat = std::move(queue.front());
        queue.pop_front();
        ++started;
        ++active;
      }

      TrialRecord record;
      record.key = strategy::canonical_key(strat);
      std::optional<StrategyOutcome> outcome;
      // Feedback fed to the generator when the trial completed: the
      // successful attempt's observations, or the journaled copy on replay.
      std::vector<statemachine::EndpointTracker::Observation> feedback_client;
      std::vector<statemachine::EndpointTracker::Observation> feedback_server;

      const TrialRecord* prior =
          resume != nullptr ? find_record(*resume, record.key) : nullptr;
      if (prior != nullptr) {
        // Resume fast path: replay the journaled outcome — detection payload,
        // failure tallies, and the generator feedback — without running the
        // simulation. The replayed feedback keeps the incremental strategy
        // generation (and the queue-shuffling RNG) walking the same sequence
        // the uninterrupted campaign walked.
        if (reg != nullptr) ++reg->counter("campaign.resume_skipped");
        record = *prior;
        feedback_client.reserve(record.client_obs.size());
        for (const JournalObservation& o : record.client_obs)
          feedback_client.push_back(
              {o.state, o.packet_type, statemachine::TriggerKind::kSend});
        feedback_server.reserve(record.server_obs.size());
        for (const JournalObservation& o : record.server_obs)
          feedback_server.push_back(
              {o.state, o.packet_type, statemachine::TriggerKind::kSend});
      } else {
        // Live trial, guarded: a watchdog abort or an exception fails the
        // attempt instead of wedging or killing the executor; failed
        // attempts retry once (by default) under a perturbed seed.
        obs::ScopedTimer strategy_timer(reg, "campaign.strategy_seconds");
        RunMetrics run;
        bool trial_completed = false;
        TrialVerdict fail_verdict = TrialVerdict::kErrored;
        std::uint32_t attempts_used = 0;
        for (std::uint32_t attempt = 0; attempt < max_attempts && !trial_completed;
             ++attempt) {
          attempts_used = attempt + 1;
          if (attempt > 0 && reg != nullptr) ++reg->counter("campaign.trials_retried");
          // The retry seed is a pure function of the retry index so results
          // stay reproducible; the fault key/attempt let seed-driven fault
          // rules target specific strategies and model transient failures.
          ScenarioConfig attempt_config = run_config;
          attempt_config.seed += attempt * config.retry_seed_offset;
          attempt_config.fault_key = strat.id;
          attempt_config.fault_attempt = attempt;
          ScenarioConfig attempt_retest = retest_config;
          attempt_retest.seed += attempt * config.retry_seed_offset;
          attempt_retest.fault_key = strat.id;
          attempt_retest.fault_attempt = attempt;
          try {
            run = run_scenario(arena, attempt_config, strat);
            if (run.aborted) {
              fail_verdict = TrialVerdict::kAborted;
              record.failure_reason = run.abort_reason;
              ++record.aborted_attempts;
              if (reg != nullptr) ++reg->counter("campaign.trials_aborted");
              continue;
            }
            Detection first = detect(baseline, run, threshold);
            count_detection_reasons(reg, first, threshold);
            if (first.is_attack) {
              if (reg != nullptr) ++reg->counter("campaign.detected_first_pass");
              // Repeatability check under a different seed.
              obs::ScopedTimer retest_timer(reg, "campaign.retest_seconds");
              RunMetrics again = run_scenario(arena, attempt_retest, strat);
              if (again.aborted) {
                fail_verdict = TrialVerdict::kAborted;
                record.failure_reason = again.abort_reason;
                ++record.aborted_attempts;
                if (reg != nullptr) ++reg->counter("campaign.trials_aborted");
                continue;
              }
              Detection second = detect(retest_baseline, again, threshold);
              if (second.is_attack) {
                if (reg != nullptr) ++reg->counter("campaign.retest_confirmed");
                record.found = true;
                record.detection = first;
                record.cls = classify(strat, format, first, run);
                record.signature = attack_signature(strat, format, first, run, threshold);
              } else if (reg != nullptr) {
                ++reg->counter("campaign.retest_rejected");
              }
            }
            trial_completed = true;
          } catch (const std::exception& e) {
            fail_verdict = TrialVerdict::kErrored;
            record.failure_reason = e.what();
            ++record.errored_attempts;
            if (reg != nullptr) ++reg->counter("campaign.trials_errored");
          } catch (...) {
            fail_verdict = TrialVerdict::kErrored;
            record.failure_reason = "unknown exception";
            ++record.errored_attempts;
            if (reg != nullptr) ++reg->counter("campaign.trials_errored");
          }
        }
        record.attempts = attempts_used;
        if (trial_completed) {
          record.verdict = TrialVerdict::kCompleted;
          record.client_obs = journal_observations(run.client_observations);
          record.server_obs = journal_observations(run.server_observations);
          feedback_client = std::move(run.client_observations);
          feedback_server = std::move(run.server_observations);
        } else {
          // Every attempt failed: quarantine. Partial observations from an
          // aborted run would poison the deterministic feedback loop, so a
          // quarantined trial contributes none.
          record.verdict = fail_verdict;
          if (reg != nullptr) ++reg->counter("campaign.strategies_quarantined");
        }
        strategy_timer.stop();
      }

      if (record.found) {
        StrategyOutcome o;
        o.strat = strat;
        o.detection = record.detection;
        o.cls = record.cls;
        o.signature = record.signature;
        outcome = std::move(o);
      }

      // Checkpoint (live trials only — replayed ones are already in the
      // journal). Best-effort: the results matter, the checkpoint does not.
      bool journal_failed = false;
      if (prior == nullptr && config.journal != nullptr) {
        try {
          config.journal->append(record);
        } catch (...) {
          journal_failed = true;
          if (reg != nullptr) ++reg->counter("campaign.journal_errors");
        }
      }

      // Commit under the lock, but snapshot the progress numbers and leave
      // before invoking the user callback: a callback that blocks (or
      // re-enters campaign-adjacent locks) must not stall the whole pool.
      std::uint64_t progress_done = 0;
      std::uint64_t progress_total = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++completed;
        --active;
        result.trials_aborted += record.aborted_attempts;
        result.trials_errored += record.errored_attempts;
        result.trials_retried += record.attempts - 1;
        if (prior != nullptr) ++result.resume_skipped;
        if (journal_failed) ++result.journal_errors;
        if (record.verdict == TrialVerdict::kCompleted) {
          // Feedback: states/types observed during this run may unlock new
          // (type, state) targets.
          enqueue(generator.on_observations(feedback_client, feedback_server));
          if (outcome.has_value()) result.found.push_back(std::move(*outcome));
        } else {
          CampaignResult::Quarantined q;
          q.strat = std::move(strat);
          q.key = std::move(record.key);
          q.verdict = record.verdict;
          q.attempts = record.attempts;
          q.reason = std::move(record.failure_reason);
          result.quarantined.push_back(std::move(q));
        }
        progress_done = completed;
        progress_total = queued_total;
      }
      cv.notify_all();
      if (config.on_progress) config.on_progress(progress_done, progress_total);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads.emplace_back(worker, config.collect_metrics
                                     ? &executor_registries[static_cast<std::size_t>(i)]
                                     : nullptr);
  for (auto& t : threads) t.join();

  result.strategies_tried = started;

  // Quarantine order depends on executor interleaving; sort by canonical key
  // so reports and resumed-vs-uninterrupted comparisons are stable.
  std::sort(result.quarantined.begin(), result.quarantined.end(),
            [](const CampaignResult::Quarantined& a, const CampaignResult::Quarantined& b) {
              return a.key < b.key;
            });

  std::set<std::string> unique;
  for (const StrategyOutcome& o : result.found) {
    ++result.attack_strategies_found;
    switch (o.cls) {
      case AttackClass::kOnPath:
        ++result.on_path;
        break;
      case AttackClass::kFalsePositive:
        ++result.false_positives;
        break;
      case AttackClass::kTrueAttack:
        ++result.true_attack_strategies;
        unique.insert(o.signature);
        break;
    }
  }
  result.unique_true_attacks = unique.size();
  result.unique_signatures.assign(unique.begin(), unique.end());

  // ---- Combination phase (optional): pair the strongest distinct true
  // attacks and test whether any pair beats both of its components.
  if (config.combine_top >= 2 && !result.found.empty()) {
    obs::ScopedTimer combine_timer(main_reg, "campaign.combination_seconds");
    std::vector<const StrategyOutcome*> ranked;
    std::set<std::string> taken;
    for (const StrategyOutcome& o : result.found)
      if (o.cls == AttackClass::kTrueAttack) ranked.push_back(&o);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      return impact_score(a->detection) > impact_score(b->detection);
    });
    std::vector<const StrategyOutcome*> top;
    for (const StrategyOutcome* o : ranked) {
      if (taken.contains(o->signature)) continue;
      taken.insert(o->signature);
      top.push_back(o);
      if (top.size() >= config.combine_top) break;
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      for (std::size_t j = i + 1; j < top.size(); ++j) {
        std::vector<strategy::Strategy> pair = {top[i]->strat, top[j]->strat};
        RunMetrics run = run_scenario(main_arena, base_scenario, pair);
        Detection d = detect(baseline, run, threshold);
        count_detection_reasons(main_reg, d, threshold);
        ++result.combinations_tried;
        CombinedOutcome c;
        c.first = top[i]->strat;
        c.second = top[j]->strat;
        c.detection = d;
        c.impact_score = impact_score(d);
        c.best_single_score =
            std::max(impact_score(top[i]->detection), impact_score(top[j]->detection));
        c.stronger_than_parts = c.impact_score > c.best_single_score + 1e-9;
        if (c.stronger_than_parts) ++result.combinations_stronger;
        result.combined.push_back(std::move(c));
      }
    }
  }

  if (config.collect_metrics) {
    result.metrics.merge_from(main_registry);
    for (const obs::MetricsRegistry& reg : executor_registries)
      result.metrics.merge_from(reg);
    result.metrics.counter("campaign.strategies_tried") += result.strategies_tried;
    result.metrics.gauge("campaign.detect_threshold") = threshold;
  }
  return result;
}

}  // namespace snake::core
