#include "snake/controller.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "packet/dccp_format.h"
#include "packet/tcp_format.h"
#include "statemachine/protocol_specs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace snake::core {

namespace {

const packet::HeaderFormat& format_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? packet::tcp_format() : packet::dccp_format();
}

const statemachine::StateMachine& machine_for(Protocol protocol) {
  return protocol == Protocol::kTcp ? statemachine::tcp_state_machine()
                                    : statemachine::dccp_state_machine();
}

}  // namespace

std::string table1_header() {
  return str_format("%-12s %-12s %10s %10s %10s %10s %10s %8s", "Protocol", "Impl",
                    "Tried", "Found", "On-path", "FalsePos", "TrueStrat", "Attacks");
}

std::string CampaignResult::summary_row() const {
  return str_format("%-12s %-12s %10llu %10llu %10llu %10llu %10llu %8llu",
                    protocol == Protocol::kTcp ? "TCP" : "DCCP", implementation.c_str(),
                    (unsigned long long)strategies_tried,
                    (unsigned long long)attack_strategies_found, (unsigned long long)on_path,
                    (unsigned long long)false_positives,
                    (unsigned long long)true_attack_strategies,
                    (unsigned long long)unique_true_attacks);
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const packet::HeaderFormat& format = format_for(config.scenario.protocol);
  const statemachine::StateMachine& machine = machine_for(config.scenario.protocol);
  strategy::StrategyGenerator generator(format, machine, config.generator);

  CampaignResult result;
  result.protocol = config.scenario.protocol;
  result.implementation = config.scenario.protocol == Protocol::kTcp
                              ? config.scenario.tcp_profile.name
                              : "linux-3.13";

  // Non-attack baselines, one per seed used ("runs a non-attack test").
  ScenarioConfig retest_scenario = config.scenario;
  retest_scenario.seed += config.retest_seed_offset;
  RunMetrics baseline = run_scenario(config.scenario, std::nullopt);
  RunMetrics retest_baseline = run_scenario(retest_scenario, std::nullopt);
  result.baseline = baseline;

  // Work queue, fed up front with every off-path strategy and incrementally
  // with (type, state) strategies from observed traffic.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<strategy::Strategy> queue;
  std::uint64_t queued_total = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  int active = 0;

  // Batches are shuffled (deterministically) before queueing so a capped
  // campaign samples across attack categories instead of exhausting the
  // generator's emission order.
  std::mt19937_64 shuffle_rng(config.scenario.seed * 1000003 + 17);
  auto enqueue = [&](std::vector<strategy::Strategy> batch) {
    std::shuffle(batch.begin(), batch.end(), shuffle_rng);
    for (auto& s : batch) {
      queue.push_back(std::move(s));
      ++queued_total;
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    // Malicious-client strategies from the baseline's observations first,
    // then the full off-path sweep.
    enqueue(generator.on_observations(baseline.client_observations,
                                      baseline.server_observations));
    enqueue(generator.off_path_strategies());
  }

  auto worker = [&] {
    while (true) {
      strategy::Strategy strat;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !queue.empty() || active == 0; });
        if (queue.empty()) {
          if (active == 0) return;
          continue;
        }
        if (config.max_strategies != 0 && started >= config.max_strategies) {
          queue.clear();
          if (active == 0) {
            cv.notify_all();
            return;
          }
          continue;
        }
        strat = std::move(queue.front());
        queue.pop_front();
        ++started;
        ++active;
      }

      RunMetrics run = run_scenario(config.scenario, strat);
      Detection first = detect(baseline, run);

      std::optional<StrategyOutcome> outcome;
      if (first.is_attack) {
        // Repeatability check under a different seed.
        RunMetrics again = run_scenario(retest_scenario, strat);
        Detection second = detect(retest_baseline, again);
        if (second.is_attack) {
          StrategyOutcome o;
          o.strat = strat;
          o.detection = first;
          o.cls = classify(strat, format, first, run);
          o.signature = attack_signature(strat, format, first, run);
          outcome = std::move(o);
        }
      }

      {
        std::lock_guard<std::mutex> lock(mutex);
        ++completed;
        --active;
        // Feedback: states/types observed during this run may unlock new
        // (type, state) targets.
        enqueue(generator.on_observations(run.client_observations,
                                          run.server_observations));
        if (outcome.has_value()) result.found.push_back(std::move(*outcome));
        if (config.on_progress) config.on_progress(completed, queued_total);
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  int n = std::max(1, config.executors);
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  result.strategies_tried = started;

  std::set<std::string> unique;
  for (const StrategyOutcome& o : result.found) {
    ++result.attack_strategies_found;
    switch (o.cls) {
      case AttackClass::kOnPath:
        ++result.on_path;
        break;
      case AttackClass::kFalsePositive:
        ++result.false_positives;
        break;
      case AttackClass::kTrueAttack:
        ++result.true_attack_strategies;
        unique.insert(o.signature);
        break;
    }
  }
  result.unique_true_attacks = unique.size();
  result.unique_signatures.assign(unique.begin(), unique.end());

  // ---- Combination phase (optional): pair the strongest distinct true
  // attacks and test whether any pair beats both of its components.
  if (config.combine_top >= 2 && !result.found.empty()) {
    std::vector<const StrategyOutcome*> ranked;
    std::set<std::string> taken;
    for (const StrategyOutcome& o : result.found)
      if (o.cls == AttackClass::kTrueAttack) ranked.push_back(&o);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      return impact_score(a->detection) > impact_score(b->detection);
    });
    std::vector<const StrategyOutcome*> top;
    for (const StrategyOutcome* o : ranked) {
      if (taken.contains(o->signature)) continue;
      taken.insert(o->signature);
      top.push_back(o);
      if (top.size() >= config.combine_top) break;
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      for (std::size_t j = i + 1; j < top.size(); ++j) {
        std::vector<strategy::Strategy> pair = {top[i]->strat, top[j]->strat};
        RunMetrics run = run_scenario(config.scenario, pair);
        Detection d = detect(baseline, run);
        ++result.combinations_tried;
        CombinedOutcome c;
        c.first = top[i]->strat;
        c.second = top[j]->strat;
        c.detection = d;
        c.impact_score = impact_score(d);
        c.best_single_score =
            std::max(impact_score(top[i]->detection), impact_score(top[j]->detection));
        c.stronger_than_parts = c.impact_score > c.best_single_score + 1e-9;
        if (c.stronger_than_parts) ++result.combinations_stronger;
        result.combined.push_back(std::move(c));
      }
    }
  }
  return result;
}

}  // namespace snake::core
