#include "snake/trial_runner.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "snake/arena.h"
#include "snake/controller.h"
#include "snake/detector.h"
#include "snake/snapshot.h"

namespace snake::core {

namespace {

/// One scenario run, snapshot-forked when the context allows it. Only first
/// attempts qualify: retries carry perturbed seeds that would each cost a
/// fresh two-pass session build for (usually) a single run.
RunMetrics run_one(ScenarioArena& arena, const TrialContext& ctx,
                   const ScenarioConfig& config, const strategy::Strategy& strat,
                   std::uint32_t attempt) {
  if (ctx.snapshots != nullptr && attempt == 0) {
    std::vector<strategy::Strategy> attacks;
    attacks.push_back(strat);
    std::optional<RunMetrics> forked = ctx.snapshots->run_trial(config, attacks);
    if (forked.has_value()) return *forked;
  }
  return run_scenario(arena, config, strat);
}

}  // namespace

std::vector<JournalObservation> journal_observations(
    const std::vector<statemachine::EndpointTracker::Observation>& obs) {
  std::vector<JournalObservation> out;
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& o : obs) {
    if (o.direction != statemachine::TriggerKind::kSend) continue;
    if (!seen.emplace(o.state, o.packet_type).second) continue;
    out.push_back(JournalObservation{o.state, o.packet_type});
  }
  return out;
}

TrialRecord execute_trial(ScenarioArena& arena, const TrialContext& ctx,
                          const strategy::Strategy& strat, obs::MetricsRegistry* reg) {
  TrialRecord record;
  record.key = strategy::canonical_key(strat);
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, ctx.max_attempts);

  // Live trial, guarded: a watchdog abort or an exception fails the attempt
  // instead of wedging or killing the executor; failed attempts retry (once
  // by default) under a perturbed seed.
  obs::ScopedTimer strategy_timer(reg, "campaign.strategy_seconds");
  RunMetrics run;
  bool trial_completed = false;
  TrialVerdict fail_verdict = TrialVerdict::kErrored;
  std::uint32_t attempts_used = 0;
  for (std::uint32_t attempt = 0; attempt < max_attempts && !trial_completed; ++attempt) {
    attempts_used = attempt + 1;
    if (attempt > 0 && reg != nullptr) ++reg->counter("campaign.trials_retried");
    // The retry seed is a pure function of the retry index so results stay
    // reproducible; the fault key/attempt let seed-driven fault rules target
    // specific strategies and model transient failures.
    ScenarioConfig attempt_config = *ctx.run_template;
    attempt_config.seed += attempt * ctx.retry_seed_offset;
    attempt_config.fault_key = strat.id;
    attempt_config.fault_attempt = attempt;
    ScenarioConfig attempt_retest = *ctx.retest_template;
    attempt_retest.seed += attempt * ctx.retry_seed_offset;
    attempt_retest.fault_key = strat.id;
    attempt_retest.fault_attempt = attempt;
    try {
      run = run_one(arena, ctx, attempt_config, strat, attempt);
      if (run.aborted) {
        fail_verdict = TrialVerdict::kAborted;
        record.failure_reason = run.abort_reason;
        ++record.aborted_attempts;
        if (reg != nullptr) ++reg->counter("campaign.trials_aborted");
        continue;
      }
      Detection first = detect(*ctx.baseline, run, ctx.threshold);
      count_detection_reasons(reg, first, ctx.threshold);
      if (first.is_attack) {
        if (reg != nullptr) ++reg->counter("campaign.detected_first_pass");
        // Repeatability check under a different seed.
        obs::ScopedTimer retest_timer(reg, "campaign.retest_seconds");
        RunMetrics again = run_one(arena, ctx, attempt_retest, strat, attempt);
        if (again.aborted) {
          fail_verdict = TrialVerdict::kAborted;
          record.failure_reason = again.abort_reason;
          ++record.aborted_attempts;
          if (reg != nullptr) ++reg->counter("campaign.trials_aborted");
          continue;
        }
        Detection second = detect(*ctx.retest_baseline, again, ctx.threshold);
        if (second.is_attack) {
          if (reg != nullptr) ++reg->counter("campaign.retest_confirmed");
          record.found = true;
          record.detection = first;
          record.cls = classify(strat, *ctx.format, first, run);
          record.signature = attack_signature(strat, *ctx.format, first, run, ctx.threshold);
        } else if (reg != nullptr) {
          ++reg->counter("campaign.retest_rejected");
        }
      }
      trial_completed = true;
    } catch (const std::exception& e) {
      fail_verdict = TrialVerdict::kErrored;
      record.failure_reason = e.what();
      ++record.errored_attempts;
      if (reg != nullptr) ++reg->counter("campaign.trials_errored");
    } catch (...) {
      fail_verdict = TrialVerdict::kErrored;
      record.failure_reason = "unknown exception";
      ++record.errored_attempts;
      if (reg != nullptr) ++reg->counter("campaign.trials_errored");
    }
  }
  record.attempts = attempts_used;
  if (trial_completed) {
    record.verdict = TrialVerdict::kCompleted;
    record.client_obs = journal_observations(run.client_observations);
    record.server_obs = journal_observations(run.server_observations);
  } else {
    // Every attempt failed: the caller quarantines. Partial observations
    // from an aborted run would poison the deterministic feedback loop, so
    // a failed trial contributes none.
    record.verdict = fail_verdict;
    if (reg != nullptr) ++reg->counter("campaign.strategies_quarantined");
  }
  return record;
}

// ---------------------------------------------------------------- ThreadBackend

struct ThreadBackend::Impl {
  int executors = 1;

  // Campaign context, fixed at start().
  ScenarioConfig run_template;
  ScenarioConfig retest_template;
  RunMetrics baseline;
  RunMetrics retest_baseline;
  const packet::HeaderFormat* format = nullptr;
  double threshold = 0.5;
  std::uint32_t max_attempts = 1;
  std::uint64_t retry_seed_offset = 7919;
  bool collect_metrics = true;
  bool use_snapshots = true;

  /// One snapshot store shared by every executor (see SnapshotStore):
  /// sessions are built once per seed instead of once per executor thread,
  /// which drops both duplicate prefix runs and N-1 resident frozen worlds.
  /// Emplaced fresh per start() — the store is campaign-scoped.
  std::optional<SnapshotStore> snapshots;

  std::mutex mutex;
  std::condition_variable inbox_cv;
  std::condition_variable outbox_cv;
  std::deque<TrialTask> inbox;
  std::deque<TrialOutcome> outbox;
  bool stopping = false;

  std::vector<std::thread> threads;
  std::vector<obs::MetricsRegistry> registries;

  void executor_main(obs::MetricsRegistry* reg) {
    // Thread-private scenario configs pointing at this executor's registry,
    // plus the executor's arena: network and stacks built once, reset
    // between trials.
    ScenarioArena arena;
    ScenarioConfig run_config = run_template;
    run_config.metrics = reg;
    ScenarioConfig retest_config = retest_template;
    retest_config.metrics = reg;
    TrialContext ctx;
    ctx.snapshots = use_snapshots && snapshots.has_value() ? &*snapshots : nullptr;
    ctx.run_template = &run_config;
    ctx.retest_template = &retest_config;
    ctx.baseline = &baseline;
    ctx.retest_baseline = &retest_baseline;
    ctx.format = format;
    ctx.threshold = threshold;
    ctx.max_attempts = max_attempts;
    ctx.retry_seed_offset = retry_seed_offset;

    while (true) {
      TrialTask task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        inbox_cv.wait(lock, [&] { return stopping || !inbox.empty(); });
        if (inbox.empty()) return;  // stopping and drained
        task = std::move(inbox.front());
        inbox.pop_front();
      }
      TrialOutcome out;
      out.seq = task.seq;
      out.record = execute_trial(arena, ctx, task.strat, reg);
      {
        std::lock_guard<std::mutex> lock(mutex);
        outbox.push_back(std::move(out));
      }
      outbox_cv.notify_one();
    }
  }
};

ThreadBackend::ThreadBackend(int executors) : impl_(new Impl) {
  impl_->executors = std::max(1, executors);
}

ThreadBackend::~ThreadBackend() {
  finish(nullptr);
  delete impl_;
}

bool ThreadBackend::start(const CampaignConfig& config, const RunMetrics& baseline,
                          const RunMetrics& retest_baseline) {
  Impl& im = *impl_;
  im.run_template = config.scenario;
  im.run_template.early_exit = config.early_exit;
  im.retest_template = im.run_template;
  im.retest_template.seed += config.retest_seed_offset;
  im.baseline = baseline;
  im.retest_baseline = retest_baseline;
  im.format = &format_for_protocol(config.scenario.protocol);
  im.threshold = config.detect_threshold;
  im.max_attempts = std::max<std::uint32_t>(1, config.trial_attempts);
  im.retry_seed_offset = config.retry_seed_offset;
  im.collect_metrics = config.collect_metrics;
  im.use_snapshots = config.use_snapshots;
  im.snapshots.emplace();  // fresh campaign-scoped store (sessions key by seed)
  // One session per executor: the pool's whole point is that every executor
  // can fork trials concurrently; capping below the thread count turns the
  // overflow into fallback full runs (snapshot.pool_exhausted counts them).
  im.snapshots->set_max_sessions_per_seed(static_cast<std::size_t>(im.executors));

  im.registries.clear();
  im.registries.resize(static_cast<std::size_t>(im.executors));
  im.stopping = false;
  im.threads.reserve(static_cast<std::size_t>(im.executors));
  for (int i = 0; i < im.executors; ++i) {
    obs::MetricsRegistry* reg =
        im.collect_metrics ? &im.registries[static_cast<std::size_t>(i)] : nullptr;
    im.threads.emplace_back([&im, reg] { im.executor_main(reg); });
  }
  return true;
}

std::size_t ThreadBackend::capacity() const {
  // Dispatch ahead 2x the pool so a committing coordinator never leaves an
  // executor idle; the in-order commit buffer absorbs the reordering.
  return static_cast<std::size_t>(impl_->executors) * 2;
}

void ThreadBackend::submit(TrialTask task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->inbox.push_back(std::move(task));
  }
  impl_->inbox_cv.notify_one();
}

TrialOutcome ThreadBackend::wait_outcome() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->outbox_cv.wait(lock, [&] { return !impl_->outbox.empty(); });
  TrialOutcome out = std::move(impl_->outbox.front());
  impl_->outbox.pop_front();
  return out;
}

void ThreadBackend::finish(obs::MetricsRegistry* into) {
  Impl& im = *impl_;
  if (!im.threads.empty()) {
    {
      std::lock_guard<std::mutex> lock(im.mutex);
      im.stopping = true;
    }
    im.inbox_cv.notify_all();
    for (auto& t : im.threads) t.join();
    im.threads.clear();
  }
  if (into != nullptr)
    for (const obs::MetricsRegistry& reg : im.registries) into->merge_from(reg);
  im.registries.clear();
}

}  // namespace snake::core
