// Trace-replay workloads: a dependency-free text format describing real
// per-flow application behaviour (when connections open, how many bytes each
// side pushes and when, when they close) plus the reconstructor that turns a
// trace into deterministic per-connection schedules a campaign can drive.
//
// The paper evaluates SNAKE against a fixed synthetic workload ("a large
// HTTP download"); trace replay lets a campaign exercise the same attack
// search against traffic shaped like a recorded deployment instead —
// short-lived request/response flows, long pauses, interleaved bidirectional
// bursts — while keeping every property campaigns rely on: the plan is a
// pure function of (trace text, options), so identical inputs give
// bit-identical trials on every backend.
//
// Format (one record per line, '#' comments and blank lines ignored):
//
//   # snake-trace/v1            <- required magic, first significant line
//   <time_s> <flow_id> open
//   <time_s> <flow_id> send <bytes>    <- client -> server payload
//   <time_s> <flow_id> recv <bytes>    <- server -> client payload
//   <time_s> <flow_id> close           <- client-initiated teardown
//
// Times are non-negative decimal seconds from trace start; flow ids are
// arbitrary whitespace-free tokens. Records for one flow must appear in
// non-decreasing time order, open first, close (if present) last. Flows
// without a close record stay open to the end of the run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snake::trace {

enum class TraceOp { kOpen, kSend, kRecv, kClose };

struct TraceRecord {
  double at_s = 0.0;       ///< seconds from trace start
  std::string flow;        ///< flow identifier token
  TraceOp op = TraceOp::kOpen;
  std::uint64_t bytes = 0; ///< payload size for kSend / kRecv, else 0
};

struct ParsedTrace {
  std::vector<TraceRecord> records;  ///< in file order
  std::size_t flow_count = 0;
};

/// Parses snake-trace/v1 text. Returns nullopt on any malformed line,
/// missing magic, or per-flow ordering violation; `error` (optional) gets a
/// one-line human-readable reason with the offending line number.
std::optional<ParsedTrace> parse_trace(const std::string& text, std::string* error = nullptr);

/// One data burst within a flow. Exactly one of the byte counts is nonzero:
/// a trace `send` becomes client bytes, a `recv` server bytes.
struct FlowTransfer {
  double at_s = 0.0;
  std::uint64_t client_bytes = 0;
  std::uint64_t server_bytes = 0;
};

/// Everything the replay applications need to drive one connection.
struct FlowSchedule {
  std::string id;
  double open_at_s = 0.0;
  std::optional<double> close_at_s;
  std::vector<FlowTransfer> transfers;  ///< non-decreasing at_s
  std::uint64_t total_client_bytes = 0;
  std::uint64_t total_server_bytes = 0;
};

struct ReplayOptions {
  /// Keep at most this many flows (0 = all). Down-sampling is a keyed hash
  /// over flow ids, so the same (trace, seed, max_flows) always keeps the
  /// same subset regardless of trace record order.
  std::size_t max_flows = 0;
  std::uint64_t seed = 1;
  /// Multiplies every timestamp; <1 compresses a long trace into a short
  /// test window, >1 stretches it. Must be positive.
  double time_scale = 1.0;
};

struct ReplayPlan {
  /// Flows sorted by (open time, id) — the order the replay client opens
  /// connections in, which is also how the server pairs accepted
  /// connections with schedules.
  std::vector<FlowSchedule> flows;
  std::uint64_t total_client_bytes = 0;
  std::uint64_t total_server_bytes = 0;
  double horizon_s = 0.0;  ///< last scheduled instant across all flows
};

/// Reconstructs per-flow schedules from a parsed trace. Pure function of its
/// arguments: given the same trace text and options it returns the same plan
/// on every host, which is what lets distributed workers rebuild identical
/// workloads from the wire-shipped trace text.
ReplayPlan build_replay_plan(const ParsedTrace& trace, const ReplayOptions& options);

/// Stable 64-bit FNV-1a over the trace text — folded into the campaign
/// identity hash so journals from different traces never merge.
std::uint64_t trace_text_hash(const std::string& text);

}  // namespace snake::trace
