#include "trace/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>

#include "util/strings.h"

namespace snake::trace {

namespace {

constexpr const char* kMagic = "snake-trace/v1";

struct LineScanner {
  const std::string& text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  /// Next line, stripped of trailing CR; nullopt at end of input.
  std::optional<std::string> next() {
    if (pos >= text.size()) return std::nullopt;
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }
};

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

bool parse_time(const std::string& tok, double& out) {
  // Plain decimal seconds only: no inf/nan/hex, no trailing junk.
  if (tok.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  if (!std::isfinite(v) || v < 0.0) return false;
  out = v;
  return true;
}

bool parse_bytes(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 19) return false;  // 19 digits < 2^63
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;  // a zero-byte burst is a malformed record
  out = v;
  return true;
}

void fail(std::string* error, std::size_t line_no, const char* what) {
  if (error != nullptr) *error = str_format("trace line %zu: %s", line_no, what);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

}  // namespace

std::optional<ParsedTrace> parse_trace(const std::string& text, std::string* error) {
  LineScanner scanner{text};
  bool magic_seen = false;

  // Per-flow running state for the ordering rules.
  struct FlowState {
    double last_at = 0.0;
    bool closed = false;
  };
  std::map<std::string, FlowState> flows;

  ParsedTrace out;
  while (std::optional<std::string> line = scanner.next()) {
    std::string significant = *line;
    // '#' starts a comment; the magic line is itself a comment, so check it
    // before stripping.
    std::size_t first = significant.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (significant[first] == '#') {
      if (!magic_seen) {
        std::string body = significant.substr(first + 1);
        std::size_t b = body.find_first_not_of(" \t");
        if (b != std::string::npos &&
            body.compare(b, std::string::npos, kMagic) == 0)
          magic_seen = true;
      }
      continue;
    }
    if (!magic_seen) {
      fail(error, scanner.line_no, "records before '# snake-trace/v1' magic");
      return std::nullopt;
    }

    std::vector<std::string> tok = split_tokens(significant);
    if (tok.size() < 3) {
      fail(error, scanner.line_no, "expected '<time> <flow> <op> [bytes]'");
      return std::nullopt;
    }
    TraceRecord rec;
    if (!parse_time(tok[0], rec.at_s)) {
      fail(error, scanner.line_no, "bad timestamp (non-negative decimal seconds)");
      return std::nullopt;
    }
    rec.flow = tok[1];
    const std::string& op = tok[2];
    bool needs_bytes = false;
    if (op == "open") {
      rec.op = TraceOp::kOpen;
    } else if (op == "close") {
      rec.op = TraceOp::kClose;
    } else if (op == "send") {
      rec.op = TraceOp::kSend;
      needs_bytes = true;
    } else if (op == "recv") {
      rec.op = TraceOp::kRecv;
      needs_bytes = true;
    } else {
      fail(error, scanner.line_no, "unknown op (want open/send/recv/close)");
      return std::nullopt;
    }
    if (needs_bytes) {
      if (tok.size() != 4 || !parse_bytes(tok[3], rec.bytes)) {
        fail(error, scanner.line_no, "send/recv need a positive byte count");
        return std::nullopt;
      }
    } else if (tok.size() != 3) {
      fail(error, scanner.line_no, "open/close take no byte count");
      return std::nullopt;
    }

    auto it = flows.find(rec.flow);
    if (rec.op == TraceOp::kOpen) {
      if (it != flows.end()) {
        fail(error, scanner.line_no, "duplicate open for flow");
        return std::nullopt;
      }
      flows.emplace(rec.flow, FlowState{rec.at_s, false});
      ++out.flow_count;
    } else {
      if (it == flows.end()) {
        fail(error, scanner.line_no, "record for flow before its open");
        return std::nullopt;
      }
      if (it->second.closed) {
        fail(error, scanner.line_no, "record for flow after its close");
        return std::nullopt;
      }
      if (rec.at_s < it->second.last_at) {
        fail(error, scanner.line_no, "flow timestamps must be non-decreasing");
        return std::nullopt;
      }
      it->second.last_at = rec.at_s;
      if (rec.op == TraceOp::kClose) it->second.closed = true;
    }
    out.records.push_back(std::move(rec));
  }
  if (!magic_seen) {
    fail(error, scanner.line_no, "missing '# snake-trace/v1' magic line");
    return std::nullopt;
  }
  return out;
}

ReplayPlan build_replay_plan(const ParsedTrace& trace, const ReplayOptions& options) {
  const double scale = options.time_scale > 0.0 ? options.time_scale : 1.0;

  // Fold records into per-flow schedules, keyed by id (records already
  // validated per-flow ordered).
  std::map<std::string, FlowSchedule> by_id;
  for (const TraceRecord& rec : trace.records) {
    FlowSchedule& f = by_id[rec.flow];
    switch (rec.op) {
      case TraceOp::kOpen:
        f.id = rec.flow;
        f.open_at_s = rec.at_s * scale;
        break;
      case TraceOp::kClose:
        f.close_at_s = rec.at_s * scale;
        break;
      case TraceOp::kSend: {
        FlowTransfer t;
        t.at_s = rec.at_s * scale;
        t.client_bytes = rec.bytes;
        f.transfers.push_back(t);
        f.total_client_bytes += rec.bytes;
        break;
      }
      case TraceOp::kRecv: {
        FlowTransfer t;
        t.at_s = rec.at_s * scale;
        t.server_bytes = rec.bytes;
        f.transfers.push_back(t);
        f.total_server_bytes += rec.bytes;
        break;
      }
    }
  }

  std::vector<FlowSchedule> flows;
  flows.reserve(by_id.size());
  for (auto& [id, f] : by_id) flows.push_back(std::move(f));

  // Keyed-hash down-sampling: rank flows by fnv1a(id) mixed with the seed so
  // the kept subset is a property of the ids, never of file order, then
  // re-sort survivors into open order.
  if (options.max_flows > 0 && flows.size() > options.max_flows) {
    auto rank = [&](const FlowSchedule& f) {
      std::uint64_t h = fnv1a(kFnvOffset, f.id.data(), f.id.size());
      std::uint64_t s = options.seed;
      h = fnv1a(h, &s, sizeof s);
      return h;
    };
    std::sort(flows.begin(), flows.end(), [&](const FlowSchedule& a, const FlowSchedule& b) {
      std::uint64_t ra = rank(a), rb = rank(b);
      if (ra != rb) return ra < rb;
      return a.id < b.id;
    });
    flows.resize(options.max_flows);
  }
  std::sort(flows.begin(), flows.end(), [](const FlowSchedule& a, const FlowSchedule& b) {
    if (a.open_at_s != b.open_at_s) return a.open_at_s < b.open_at_s;
    return a.id < b.id;
  });

  ReplayPlan plan;
  for (FlowSchedule& f : flows) {
    plan.total_client_bytes += f.total_client_bytes;
    plan.total_server_bytes += f.total_server_bytes;
    double last = f.open_at_s;
    if (!f.transfers.empty()) last = std::max(last, f.transfers.back().at_s);
    if (f.close_at_s.has_value()) last = std::max(last, *f.close_at_s);
    plan.horizon_s = std::max(plan.horizon_s, last);
    plan.flows.push_back(std::move(f));
  }
  return plan;
}

std::uint64_t trace_text_hash(const std::string& text) {
  return fnv1a(kFnvOffset, text.data(), text.size());
}

}  // namespace snake::trace
