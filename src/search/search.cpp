#include "search/search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/json.h"

namespace snake::search {

const char* to_string(SearchMode mode) {
  switch (mode) {
    case SearchMode::kGrid:
      return "grid";
    case SearchMode::kGreybox:
      return "greybox";
  }
  return "grid";
}

std::optional<SearchMode> search_mode_from_string(std::string_view name) {
  if (name == "grid") return SearchMode::kGrid;
  if (name == "greybox") return SearchMode::kGreybox;
  return std::nullopt;
}

double fitness_score(const TrialFeedback& feedback, const SearchConfig& config) {
  if (!feedback.completed) return 0.0;
  const double coverage =
      std::min(1.0, static_cast<double>(feedback.fresh_pairs.size()) / 8.0);
  const double margin = std::max(0.0, feedback.margin);
  return margin + config.coverage_weight * coverage;
}

std::uint32_t energy_for(double fitness, const SearchConfig& config) {
  if (!(fitness > 0.0)) return 0;  // also catches NaN
  const std::uint32_t lo = std::min(config.energy_min, config.energy_max);
  const std::uint32_t hi = std::max(config.energy_min, config.energy_max);
  const double scaled = fitness * std::max(0.0, config.energy_scale);
  // Saturate before the float->int conversion: a huge fitness must clamp,
  // not overflow into UB.
  if (scaled >= static_cast<double>(hi)) return hi;
  const std::uint32_t energy = lo + static_cast<std::uint32_t>(scaled);
  return std::min(hi, std::max(lo, energy));
}

// ------------------------------------------------------------ pool state

bool PoolState::operator==(const PoolState& other) const {
  if (seed != other.seed || mutation_counter != other.mutation_counter ||
      trials_seen != other.trials_seen || attacks_seen != other.attacks_seen ||
      rounds != other.rounds || mutations_spawned != other.mutations_spawned ||
      universe_size != other.universe_size || entries.size() != other.entries.size())
    return false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& a = entries[i];
    const Entry& b = other.entries[i];
    if (a.key != b.key || a.fitness != b.fitness || a.energy_left != b.energy_left ||
        a.generation != b.generation)
      return false;
  }
  return true;
}

void write_json(obs::JsonWriter& w, const PoolState& state) {
  w.begin_object();
  w.key("schema").value(std::string(kPoolStateSchema));
  w.key("seed").value(state.seed);
  w.key("mutation_counter").value(state.mutation_counter);
  w.key("trials_seen").value(state.trials_seen);
  w.key("attacks_seen").value(state.attacks_seen);
  w.key("rounds").value(state.rounds);
  w.key("mutations_spawned").value(state.mutations_spawned);
  w.key("universe_size").value(state.universe_size);
  w.key("pool").begin_array();
  for (const PoolState::Entry& e : state.entries) {
    w.begin_object();
    w.key("key").value(e.key);
    w.key("fitness").value(e.fitness);
    w.key("energy_left").value(static_cast<std::uint64_t>(e.energy_left));
    w.key("generation").value(static_cast<std::uint64_t>(e.generation));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

/// Strict numeric field reader: present, a number, finite, non-negative and
/// integral (the parser backs numbers with double; a checkpoint holding
/// "trials_seen": 3.5 is poisoned, not sloppy).
bool u64_field(const obs::JsonValue& v, const char* name, std::uint64_t* out) {
  const obs::JsonValue* f = v.find(name);
  if (f == nullptr || !f->is_number()) return false;
  const double d = f->num_v;
  if (!std::isfinite(d) || d < 0.0 || d > 9.007199254740992e15) return false;
  if (d != std::floor(d)) return false;
  *out = static_cast<std::uint64_t>(d);
  return true;
}

bool u32_field(const obs::JsonValue& v, const char* name, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!u64_field(v, name, &wide)) return false;
  if (wide > std::numeric_limits<std::uint32_t>::max()) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

}  // namespace

std::optional<PoolState> pool_state_from_json(const obs::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  const obs::JsonValue* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->str_v != kPoolStateSchema)
    return std::nullopt;
  PoolState state;
  if (!u64_field(v, "seed", &state.seed)) return std::nullopt;
  if (!u64_field(v, "mutation_counter", &state.mutation_counter)) return std::nullopt;
  if (!u64_field(v, "trials_seen", &state.trials_seen)) return std::nullopt;
  if (!u64_field(v, "attacks_seen", &state.attacks_seen)) return std::nullopt;
  if (!u64_field(v, "rounds", &state.rounds)) return std::nullopt;
  if (!u64_field(v, "mutations_spawned", &state.mutations_spawned)) return std::nullopt;
  if (!u64_field(v, "universe_size", &state.universe_size)) return std::nullopt;
  const obs::JsonValue* pool = v.find("pool");
  if (pool == nullptr || !pool->is_array()) return std::nullopt;
  for (const obs::JsonValue& item : pool->array_v) {
    if (!item.is_object()) return std::nullopt;
    PoolState::Entry e;
    const obs::JsonValue* key = item.find("key");
    if (key == nullptr || !key->is_string() || key->str_v.empty()) return std::nullopt;
    e.key = key->str_v;
    const obs::JsonValue* fitness = item.find("fitness");
    if (fitness == nullptr || !fitness->is_number()) return std::nullopt;
    e.fitness = fitness->num_v;
    // Pool membership requires positive fitness; zero, negative or NaN
    // entries cannot have been written by the engine.
    if (!std::isfinite(e.fitness) || e.fitness <= 0.0) return std::nullopt;
    if (!u32_field(item, "energy_left", &e.energy_left)) return std::nullopt;
    if (!u32_field(item, "generation", &e.generation)) return std::nullopt;
    state.entries.push_back(std::move(e));
  }
  // A consistent checkpoint never claims more attacks or mutations than
  // trials and counter draws.
  if (state.attacks_seen > state.trials_seen) return std::nullopt;
  if (state.mutations_spawned > state.mutation_counter) return std::nullopt;
  return state;
}

std::optional<PoolState> pool_state_from_text(std::string_view text) {
  std::optional<obs::JsonValue> doc = obs::parse_json(text);
  if (!doc.has_value()) return std::nullopt;
  return pool_state_from_json(*doc);
}

// ---------------------------------------------------------------- engine

namespace {

/// splitmix64 — decorrelates (seed, counter) into an mt19937_64 seed so each
/// mutation draws from an independent, serializable-by-counter stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Child ids live far above the generator's sequential range so reports make
/// the provenance of a strategy obvious. Identity never depends on the id
/// (canonical_key excludes it).
constexpr std::uint64_t kChildIdBase = 1ULL << 40;

std::uint64_t pick_index(std::mt19937_64& rng, std::size_t size) {
  return size == 0 ? 0 : rng() % size;
}

template <typename T>
T pick_one(std::mt19937_64& rng, const std::vector<T>& ladder) {
  return ladder[pick_index(rng, ladder.size())];
}

}  // namespace

SearchEngine::SearchEngine(SearchConfig config, std::uint64_t campaign_seed,
                           const packet::HeaderFormat& format,
                           const statemachine::StateMachine& machine)
    : config_(std::move(config)),
      seed_(campaign_seed),
      format_(&format),
      machine_(&machine) {
  if (config_.round_size == 0) config_.round_size = 1;
  if (config_.mutation_attempts == 0) config_.mutation_attempts = 1;
}

// Offered batches keep their generator order: selection is entirely
// priority-driven (next_round), so shuffling here would only randomize the
// tie-break between equal-priority strategies — trading the aggressiveness
// ordering's head start for grid-style luck.
void SearchEngine::offer(std::vector<strategy::Strategy> batch) {
  for (strategy::Strategy& s : batch) {
    std::string key = strategy::canonical_key(s);
    if (!seen_keys_.insert(std::move(key)).second) continue;
    auto coords = std::make_pair(s.target_state, s.packet_type);
    if (known_coords_seen_.insert(coords).second) known_coords_.push_back(coords);
    const bool delivery = s.action != strategy::AttackAction::kInject &&
                          s.action != strategy::AttackAction::kHitSeqWindow;
    const char* dir =
        s.direction == strategy::TrafficDirection::kClientToServer ? ">" : "<";
    if (delivery &&
        activity_coords_.emplace(s.target_state, s.packet_type + dir).second)
      ++state_activity_[coords.first];
    universe_.push_back(std::move(s));
  }
}

void SearchEngine::on_result(const strategy::Strategy& strat,
                             const TrialFeedback& feedback) {
  ++trials_seen_;
  if (feedback.found) ++attacks_seen_;
  for (const auto& [state, type] : feedback.fresh_pairs) {
    covered_states_.insert(state);
    covered_types_.insert(type);
  }

  const double fitness = fitness_score(feedback, config_);
  const std::uint32_t energy = energy_for(fitness, config_);
  if (energy == 0) return;
  const std::string key = strategy::canonical_key(strat);
  auto gen_it = generation_of_.find(key);
  const std::uint32_t generation = gen_it == generation_of_.end() ? 0 : gen_it->second;
  if (generation >= config_.max_generation) return;

  for (PoolEntry& e : pool_) {
    if (e.key == key) {
      // Re-seen key (defensive; the engine emits each key once). Keep the
      // better score, top up the energy.
      if (fitness > e.fitness) e.fitness = fitness;
      e.energy_left = std::max(e.energy_left, energy);
      return;
    }
  }
  PoolEntry entry;
  entry.strat = strat;
  entry.key = key;
  entry.fitness = fitness;
  entry.energy_left = energy;
  entry.generation = generation;
  pool_.push_back(std::move(entry));
  if (pool_.size() > std::max<std::size_t>(config_.pool_capacity, 1)) {
    auto weakest = std::min_element(pool_.begin(), pool_.end(),
                                    [](const PoolEntry& a, const PoolEntry& b) {
                                      if (a.fitness != b.fitness) return a.fitness < b.fitness;
                                      return a.key < b.key;
                                    });
    pool_.erase(weakest);
  }
}

std::vector<const SearchEngine::PoolEntry*> SearchEngine::ranked_pool() const {
  std::vector<const PoolEntry*> ranked;
  ranked.reserve(pool_.size());
  for (const PoolEntry& e : pool_) ranked.push_back(&e);
  std::sort(ranked.begin(), ranked.end(), [](const PoolEntry* a, const PoolEntry* b) {
    if (a->fitness != b->fitness) return a->fitness > b->fitness;
    return a->key < b->key;
  });
  return ranked;
}

double SearchEngine::universe_priority(const strategy::Strategy& s) const {
  double priority = 0.0;
  if (covered_states_.contains(s.target_state)) priority += 2000.0;
  if (s.packet_type == "*" || covered_types_.contains(s.packet_type)) priority += 1000.0;
  // Busy states next: a state the traffic dwells in (many distinct packet
  // types offered against it) gives a state-scoped attack far more packets
  // to act on than a transient one — dropping 100% of SYNs "in CLOSED"
  // catches exactly one packet before the state moves on, then
  // retransmission repairs the damage.
  auto activity = state_activity_.find(s.target_state);
  if (activity != state_activity_.end())
    priority += 200.0 * std::min(activity->second, 4);
  // Aggressiveness tie-break, scaled well below one coverage step: the most
  // disruptive parameters first (a 100% drop starves the connection outright;
  // a 12.5% drop mostly rides out on retransmissions), delivery attacks on
  // real traffic before speculative off-path injections. This is what the
  // grid's blind shuffle cannot do and where most of the trials-to-first-
  // attack gap comes from.
  switch (s.action) {
    case strategy::AttackAction::kDrop:
      priority += std::clamp(s.drop_probability, 0.0, 100.0);
      break;
    case strategy::AttackAction::kDuplicate:
      priority += 80.0 * std::min<double>(s.duplicate_count, 64) / 64.0;
      break;
    case strategy::AttackAction::kDelay:
      priority += 70.0 * std::min(s.delay_seconds, 5.0) / 5.0;
      break;
    case strategy::AttackAction::kBatch:
      priority += 60.0 * std::min(s.delay_seconds, 5.0) / 5.0;
      break;
    case strategy::AttackAction::kReflect:
      priority += 50.0;
      break;
    case strategy::AttackAction::kLie:
      priority += 40.0;
      break;
    case strategy::AttackAction::kInject:
      priority += 30.0;
      break;
    case strategy::AttackAction::kHitSeqWindow:
      priority += 20.0;
      break;
  }
  return priority;
}

std::vector<strategy::Strategy> SearchEngine::next_round() {
  std::vector<strategy::Strategy> out;
  ++rounds_;

  // Phase 1: mutation children, fitness-ranked round-robin so the strongest
  // entries spend energy first but no single entry monopolizes a round.
  std::vector<PoolEntry*> ranked;
  ranked.reserve(pool_.size());
  for (PoolEntry& e : pool_) ranked.push_back(&e);
  std::sort(ranked.begin(), ranked.end(), [](const PoolEntry* a, const PoolEntry* b) {
    if (a->fitness != b->fitness) return a->fitness > b->fitness;
    return a->key < b->key;
  });
  bool spent = true;
  while (spent && out.size() < config_.round_size &&
         mutations_spawned_ < config_.max_mutations) {
    spent = false;
    for (PoolEntry* e : ranked) {
      if (out.size() >= config_.round_size) break;
      if (mutations_spawned_ >= config_.max_mutations) break;
      if (e->energy_left == 0 || e->generation >= config_.max_generation) continue;
      --e->energy_left;
      spent = true;
      std::optional<strategy::Strategy> child = mutate(*e);
      if (child.has_value()) {
        ++mutations_spawned_;
        out.push_back(std::move(*child));
      }
    }
  }

  // Phase 2: unexplored universe, covered-coordinates first. A strategy
  // aimed at a (state, packet type) the campaign has actually observed is
  // far likelier to perturb real traffic than one aimed at a never-reached
  // corner; the grid mode's blind shuffle treats both alike.
  if (out.size() < config_.round_size && !universe_.empty()) {
    const std::size_t want = config_.round_size - out.size();
    std::vector<std::pair<double, std::size_t>> order;  // (-priority, index)
    order.reserve(universe_.size());
    for (std::size_t i = 0; i < universe_.size(); ++i)
      order.emplace_back(-universe_priority(universe_[i]), i);
    std::stable_sort(order.begin(), order.end());
    const std::size_t take = std::min(want, order.size());
    std::set<std::size_t> taken;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(universe_[order[i].second]));
      taken.insert(order[i].second);
    }
    std::deque<strategy::Strategy> rest;
    for (std::size_t i = 0; i < universe_.size(); ++i)
      if (!taken.contains(i)) rest.push_back(std::move(universe_[i]));
    universe_ = std::move(rest);
  }
  return out;
}

std::optional<strategy::Strategy> SearchEngine::mutate(const PoolEntry& parent) {
  std::mt19937_64 rng(mix64(seed_ ^ mix64(mutation_counter_++)));
  for (std::uint32_t attempt = 0; attempt < config_.mutation_attempts; ++attempt) {
    strategy::Strategy child = parent.strat;
    child.id = kChildIdBase + mutation_counter_;
    // Operator choice, with a fixed fallback order when the drawn operator
    // does not apply to this strategy shape.
    const std::uint64_t op = rng() % 4;
    bool changed = false;
    for (std::uint64_t i = 0; i < 4 && !changed; ++i) {
      switch ((op + i) % 4) {
        case 0:
          changed = refine_parameters(child, rng);
          break;
        case 1:
          changed = mutate_field_value(child, rng);
          break;
        case 2:
          changed = move_neighbourhood(child, rng);
          break;
        case 3:
          changed = splice_coordinates(child, rng);
          break;
      }
    }
    if (!changed) return std::nullopt;  // no operator applies; nothing will
    std::string key = strategy::canonical_key(child);
    if (key == parent.key || !seen_keys_.insert(key).second) continue;
    generation_of_[key] = parent.generation + 1;
    return child;
  }
  return std::nullopt;
}

bool SearchEngine::refine_parameters(strategy::Strategy& child, std::mt19937_64& rng) {
  using strategy::AttackAction;
  static const std::vector<double> kDropLadder = {100.0, 87.5, 75.0, 62.5,
                                                  50.0,  37.5, 25.0, 12.5};
  static const std::vector<int> kDupLadder = {1, 2, 3, 5, 8, 10, 16, 32};
  static const std::vector<double> kDelayLadder = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0};
  static const std::vector<double> kBatchLadder = {0.5, 1.0, 2.0, 4.0};
  switch (child.action) {
    case AttackAction::kDrop:
      child.drop_probability = pick_one(rng, kDropLadder);
      return true;
    case AttackAction::kDuplicate:
      child.duplicate_count = pick_one(rng, kDupLadder);
      return true;
    case AttackAction::kDelay:
      child.delay_seconds = pick_one(rng, kDelayLadder);
      return true;
    case AttackAction::kBatch:
      child.delay_seconds = pick_one(rng, kBatchLadder);
      return true;
    case AttackAction::kInject: {
      if (!child.inject.has_value()) return false;
      strategy::InjectSpec& spec = *child.inject;
      const packet::FieldSpec* f = format_->field(spec.seq_field);
      const std::uint64_t max = f != nullptr ? f->max_value() : (1ULL << 32) - 1;
      const std::vector<std::uint64_t> ladder = {
          0, 1, max / 4, max / 2, max / 4 * 3, max, rng() % (max == ~0ULL ? max : max + 1)};
      spec.fields[spec.seq_field] = pick_one(rng, ladder);
      return true;
    }
    case AttackAction::kHitSeqWindow: {
      if (!child.inject.has_value()) return false;
      strategy::InjectSpec& spec = *child.inject;
      switch (rng() % 5) {
        case 0:
          spec.seq_stride = std::max<std::uint64_t>(1, spec.seq_stride * 2);
          break;
        case 1:
          spec.seq_stride = std::max<std::uint64_t>(1, spec.seq_stride / 2);
          break;
        case 2:
          spec.seq_start += std::max<std::uint64_t>(1, spec.seq_stride / 2);
          break;
        case 3:
          spec.count = std::max<std::uint64_t>(1, spec.count / 2);
          break;
        case 4:
          spec.pace_pps = std::max(1.0, spec.pace_pps * (rng() % 2 == 0 ? 2.0 : 0.5));
          break;
      }
      return true;
    }
    case AttackAction::kReflect:
    case AttackAction::kLie:
      return false;
  }
  return false;
}

bool SearchEngine::mutate_field_value(strategy::Strategy& child, std::mt19937_64& rng) {
  using strategy::AttackAction;
  // Non-checksum fields are the mutable surface; checksums are refreshed by
  // the codec after any modification, so lying about them is a no-op.
  std::vector<const packet::FieldSpec*> fields;
  for (const packet::FieldSpec& f : format_->fields())
    if (f.kind != packet::FieldKind::kChecksum) fields.push_back(&f);
  if (fields.empty()) return false;

  if (child.action == AttackAction::kLie && child.lie.has_value()) {
    strategy::LieSpec& lie = *child.lie;
    switch (rng() % 3) {
      case 0: {  // new mode; kRandom ignores the operand, keep it canonical
        lie.mode = static_cast<strategy::LieSpec::Mode>(rng() % 6);
        if (lie.mode == strategy::LieSpec::Mode::kRandom) lie.operand = 0;
        break;
      }
      case 1: {  // new operand drawn from the interesting-value ladder
        const packet::FieldSpec* f = format_->field(lie.field);
        const std::uint64_t max = f != nullptr ? f->max_value() : (1ULL << 32) - 1;
        const std::vector<std::uint64_t> ladder = {0, 1, 2, max, rng() % 65536,
                                                   rng() % (max == ~0ULL ? max : max + 1)};
        lie.operand = pick_one(rng, ladder);
        if (lie.mode == strategy::LieSpec::Mode::kRandom) lie.operand = 0;
        break;
      }
      case 2:  // retarget another header field
        lie.field = fields[pick_index(rng, fields.size())]->name;
        break;
    }
    return true;
  }

  if ((child.action == AttackAction::kInject ||
       child.action == AttackAction::kHitSeqWindow) &&
      child.inject.has_value()) {
    strategy::InjectSpec& spec = *child.inject;
    switch (rng() % 3) {
      case 0: {  // perturb one forged-header field
        const packet::FieldSpec* f = fields[pick_index(rng, fields.size())];
        const std::vector<std::uint64_t> ladder = {
            0, f->max_value(), rng() % (f->max_value() == ~0ULL ? ~0ULL : f->max_value() + 1)};
        spec.fields[f->name] = pick_one(rng, ladder);
        break;
      }
      case 1:  // flip which connection the forgery lands in
        spec.target_competing = !spec.target_competing;
        break;
      case 2:  // flip the spoofed direction (and the match direction with it)
        spec.spoof_toward_client = !spec.spoof_toward_client;
        child.direction = spec.spoof_toward_client
                              ? strategy::TrafficDirection::kServerToClient
                              : strategy::TrafficDirection::kClientToServer;
        break;
    }
    return true;
  }
  return false;
}

bool SearchEngine::move_neighbourhood(strategy::Strategy& child, std::mt19937_64& rng) {
  const bool move_state = known_coords_.empty() || rng() % 2 == 0;
  if (move_state) {
    // Prefer a state one transition away — behaviourally adjacent targets —
    // falling back to a uniform draw over the machine.
    std::vector<const statemachine::Transition*> out =
        machine_->transitions_from(child.target_state);
    std::string next;
    if (!out.empty()) next = out[pick_index(rng, out.size())]->to;
    if (next.empty() || next == child.target_state) {
      const std::vector<std::string>& states = machine_->states();
      if (states.empty()) return false;
      next = states[pick_index(rng, states.size())];
    }
    if (next == child.target_state) return false;
    child.target_state = next;
    return true;
  }
  const auto& [state, type] = known_coords_[pick_index(rng, known_coords_.size())];
  (void)state;
  if (type == child.packet_type) return false;
  child.packet_type = type;
  if (child.inject.has_value()) child.inject->packet_type = type;
  return true;
}

bool SearchEngine::splice_coordinates(strategy::Strategy& child, std::mt19937_64& rng) {
  // Composition operator: this strategy's attack (action + parameters)
  // grafted onto another known strategy's injection point. Trials execute
  // one strategy at a time, so composition means splicing coordinates, not
  // running two attacks back to back.
  std::pair<std::string, std::string> coords;
  if (pool_.size() > 1) {
    const std::vector<const PoolEntry*> ranked = ranked_pool();
    const PoolEntry* donor = ranked[pick_index(rng, ranked.size())];
    coords = {donor->strat.target_state, donor->strat.packet_type};
  } else if (!known_coords_.empty()) {
    coords = known_coords_[pick_index(rng, known_coords_.size())];
  } else {
    return false;
  }
  if (coords.first == child.target_state && coords.second == child.packet_type)
    return false;
  child.target_state = coords.first;
  child.packet_type = coords.second;
  if (child.inject.has_value()) child.inject->packet_type = coords.second;
  return true;
}

PoolState SearchEngine::state() const {
  PoolState state;
  state.seed = seed_;
  state.mutation_counter = mutation_counter_;
  state.trials_seen = trials_seen_;
  state.attacks_seen = attacks_seen_;
  state.rounds = rounds_;
  state.mutations_spawned = mutations_spawned_;
  state.universe_size = universe_.size();
  for (const PoolEntry* e : ranked_pool()) {
    PoolState::Entry entry;
    entry.key = e->key;
    entry.fitness = e->fitness;
    entry.energy_left = e->energy_left;
    entry.generation = e->generation;
    state.entries.push_back(std::move(entry));
  }
  return state;
}

}  // namespace snake::search
