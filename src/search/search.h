// Feedback-guided greybox strategy search.
//
// The paper's controller enumerates the (packet type × protocol state ×
// basic attack) grid exhaustively; that stops scaling the moment the
// strategy space is enriched. This library adds the coverage-guided
// alternative from the greybox-fuzzing literature (SNPSFuzzer, the protocol
// fuzzing survey): a seeded pool of promising strategies scored by a fitness
// built from tracker state-coverage and detector margin, mutated and
// recombined under a power-schedule-style energy budget.
//
// Determinism contract
// --------------------
// The engine is driven exclusively from the controller's *commit path*,
// which processes trials strictly in dispatch order whatever backend runs
// them. All engine decisions — universe ordering, pool updates, child
// generation — happen inside offer()/on_result() calls made in commit order,
// and next_round() is only invoked at a full drain barrier (no trial in
// flight, nothing pending). Every random draw comes from an Rng keyed by
// (campaign seed, mutation counter), never from global state. Together that
// makes a greybox campaign a pure function of its seed: bit-identical across
// executor counts, worker processes, snapshots on/off and warm/cold result
// caches — the same guarantee the grid mode has, enforced in
// tests/search_test.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "packet/header_format.h"
#include "statemachine/state_machine.h"
#include "strategy/strategy.h"

namespace snake::obs {
class JsonWriter;
struct JsonValue;
}

namespace snake::search {

/// How the campaign walks its strategy space.
enum class SearchMode {
  kGrid,     ///< exhaustive enumeration in generator order (the paper)
  kGreybox,  ///< fitness-guided pool search over the same universe
};

const char* to_string(SearchMode mode);
/// Parses "grid" / "greybox"; nullopt on anything else.
std::optional<SearchMode> search_mode_from_string(std::string_view name);

struct SearchConfig {
  /// Strategies emitted per next_round() call. Rounds are the search's
  /// synchronization unit: the controller drains every trial of a round
  /// before asking for the next, so selection always sees complete feedback.
  std::size_t round_size = 32;
  /// Pool capacity; the lowest-fitness entry is evicted first (ties broken
  /// by canonical key, so eviction is deterministic).
  std::size_t pool_capacity = 64;
  /// Power schedule: energy (number of mutation children a pool entry may
  /// spawn) is energy_min + floor(fitness * energy_scale), clamped to
  /// [energy_min, energy_max]. Bounds are enforced for every finite fitness
  /// (property-tested in search_test.cpp).
  std::uint32_t energy_min = 1;
  std::uint32_t energy_max = 6;
  double energy_scale = 4.0;
  /// Mutation lineage depth cap: children of generation >= max_generation
  /// spawn no further children, bounding the search even when every child
  /// looks promising.
  std::uint32_t max_generation = 6;
  /// Global child budget; with the generation cap this guarantees
  /// termination of an uncapped (max_strategies = 0) greybox campaign.
  std::uint64_t max_mutations = 4096;
  /// Attempts per child to mutate into a canonical key not seen before;
  /// after this many collisions the energy point is forfeited.
  std::uint32_t mutation_attempts = 8;
  /// Weight of the state-coverage term against the detector-margin term in
  /// the fitness (see fitness_score).
  double coverage_weight = 0.5;
  /// Commit interval between pool-state checkpoint lines appended to the
  /// campaign journal (0 disables periodic checkpoints; a final one is
  /// always written).
  std::uint64_t checkpoint_interval = 16;
};

/// What the controller feeds back for one committed trial. Everything is
/// derived from the committed TrialRecord and the controller's monotone
/// covered-pair set, so a replayed trial (journal resume, warm cache) yields
/// exactly the feedback the live run did.
struct TrialFeedback {
  bool completed = false;  ///< verdict == kCompleted (quarantines score 0)
  bool found = false;      ///< detected + retest-confirmed
  /// Detector margin: impact_score(detection) when found, else 0 (the
  /// record only carries a detection payload for found strategies).
  double margin = 0.0;
  /// (state, packet type) send-pairs this trial covered for the first time
  /// in the campaign.
  std::vector<std::pair<std::string, std::string>> fresh_pairs;
};

/// Fitness of one trial: margin + coverage_weight * min(1, fresh/8).
/// Monotone in both the margin and the fresh-pair count (property-tested).
double fitness_score(const TrialFeedback& feedback, const SearchConfig& config);

/// Power-schedule energy for a fitness value. Returns 0 for fitness <= 0
/// (uninteresting trials spawn nothing); otherwise a value in
/// [energy_min, energy_max], monotone non-decreasing in fitness.
std::uint32_t energy_for(double fitness, const SearchConfig& config);

/// Serializable snapshot of the engine, checkpointed into the campaign
/// journal (schema "snake-search-pool/v1"). Resume correctness never depends
/// on it — a resumed campaign reconstructs the engine by deterministic
/// replay — but the checkpoint makes search progress inspectable, lets the
/// resilience suite prove the reconstruction equals the original, and is a
/// hardened parse surface (fuzzed in tests/fuzz_test.cpp).
struct PoolState {
  std::uint64_t seed = 0;
  std::uint64_t mutation_counter = 0;
  std::uint64_t trials_seen = 0;
  std::uint64_t attacks_seen = 0;
  std::uint64_t rounds = 0;
  std::uint64_t mutations_spawned = 0;
  std::uint64_t universe_size = 0;

  struct Entry {
    std::string key;  ///< strategy::canonical_key of the pool member
    double fitness = 0.0;
    std::uint32_t energy_left = 0;
    std::uint32_t generation = 0;
  };
  std::vector<Entry> entries;  ///< fitness-ranked, best first

  bool operator==(const PoolState& other) const;
};

inline constexpr std::string_view kPoolStateSchema = "snake-search-pool/v1";

/// Writes the checkpoint as one JSON object (one journal line).
void write_json(obs::JsonWriter& w, const PoolState& state);

/// Parses write_json's encoding. nullopt on anything malformed: wrong or
/// missing schema tag, missing/ill-typed fields, non-finite fitness, or a
/// malformed entry. A torn line (truncated JSON) fails the JSON parse; a
/// poisoned one (valid JSON, wrong shape) fails validation — either way the
/// loader rejects rather than guessing.
std::optional<PoolState> pool_state_from_json(const obs::JsonValue& v);
std::optional<PoolState> pool_state_from_text(std::string_view text);

/// The greybox engine. Single-threaded by design: only the controller's
/// coordinating thread calls it, at deterministic points (see file header).
class SearchEngine {
 public:
  SearchEngine(SearchConfig config, std::uint64_t campaign_seed,
               const packet::HeaderFormat& format,
               const statemachine::StateMachine& machine);

  /// Adds generator output to the unexplored universe, deduplicated by
  /// canonical key. Generator order is kept: selection is priority-driven,
  /// and offer order is only the final tie-break.
  void offer(std::vector<strategy::Strategy> batch);

  /// Commits one trial's feedback: updates coverage maps, scores the
  /// strategy, and admits it to the pool when its fitness is positive.
  void on_result(const strategy::Strategy& strat, const TrialFeedback& feedback);

  /// Emits the next round of strategies: mutation children of energized pool
  /// entries first (fitness-ranked round-robin), then unexplored universe
  /// candidates ordered by coverage priority — strategies targeting states
  /// and packet types the campaign has actually observed come before those
  /// targeting never-reached corners. Empty when the search is exhausted.
  std::vector<strategy::Strategy> next_round();

  /// Checkpoint snapshot of the current engine state.
  PoolState state() const;

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t mutations_spawned() const { return mutations_spawned_; }

 private:
  struct PoolEntry {
    strategy::Strategy strat;
    std::string key;
    double fitness = 0.0;
    std::uint32_t energy_left = 0;
    std::uint32_t generation = 0;
  };

  /// One mutation attempt cycle for `parent`; nullopt when every attempt
  /// collided with an already-seen canonical key.
  std::optional<strategy::Strategy> mutate(const PoolEntry& parent);

  // Mutation operators. Each edits `child` in place; returns false when the
  // operator does not apply to the strategy shape (the caller falls through
  // to the next operator).
  bool refine_parameters(strategy::Strategy& child, std::mt19937_64& rng);
  bool mutate_field_value(strategy::Strategy& child, std::mt19937_64& rng);
  bool move_neighbourhood(strategy::Strategy& child, std::mt19937_64& rng);
  bool splice_coordinates(strategy::Strategy& child, std::mt19937_64& rng);

  std::vector<const PoolEntry*> ranked_pool() const;
  /// Selection score for an unexplored universe strategy: coverage dominates
  /// (strategies aimed at observed states/types before never-reached
  /// corners), an aggressiveness heuristic breaks ties (drop 100% before
  /// drop 12.5%, delivery attacks before speculative injections). A pure
  /// function of the strategy and the engine's covered sets — no randomness,
  /// so ordering stays bit-identical across backends.
  double universe_priority(const strategy::Strategy& s) const;

  SearchConfig config_;
  std::uint64_t seed_ = 0;
  const packet::HeaderFormat* format_;
  const statemachine::StateMachine* machine_;

  std::deque<strategy::Strategy> universe_;
  std::vector<PoolEntry> pool_;
  std::set<std::string> seen_keys_;
  std::map<std::string, std::uint32_t> generation_of_;  ///< children only (else 0)

  /// Coverage maps from feedback: states / packet types the campaign has
  /// observed real traffic in. Drives universe prioritization.
  std::set<std::string> covered_states_;
  std::set<std::string> covered_types_;

  /// Distinct (packet type, direction) pairs per target state among offered
  /// *delivery* attacks (drop/duplicate/delay/...), which the generator only
  /// emits for observed send-pairs — a dwell-time proxy: ESTABLISHED carries
  /// many packet types in both directions, CLOSED only teardown leftovers one
  /// way. Off-path injections are excluded: they are forged against every
  /// machine state and would saturate the signal. Ranks universe picks toward
  /// busy states, where a state-scoped attack touches the most traffic.
  std::map<std::string, int> state_activity_;
  std::set<std::pair<std::string, std::string>> activity_coords_;
  /// Coordinate donors for the splice operator, collected from every offered
  /// strategy in offer order.
  std::vector<std::pair<std::string, std::string>> known_coords_;
  std::set<std::pair<std::string, std::string>> known_coords_seen_;

  std::uint64_t mutation_counter_ = 0;
  std::uint64_t trials_seen_ = 0;
  std::uint64_t attacks_seen_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t mutations_spawned_ = 0;
};

}  // namespace snake::search
