// Bulk-transfer applications over TCP — the reproduction of the paper's
// test workload: "a large HTTP download with Apache or IIS running on the
// servers and wget for clients".
//
// The server streams a large response; the client counts received bytes.
// The client can be told to exit abruptly mid-download (app_exit), modeling
// wget being terminated while data is in flight — the precondition for the
// CLOSE_WAIT Resource Exhaustion attack.
#pragma once

#include <cstdint>
#include <optional>

#include "tcp/stack.h"
#include "util/time.h"

namespace snake::apps {

/// HTTP-like bulk server. Accepts connections on `port` and streams
/// `response_bytes` to each, topping up the socket's send buffer from a
/// periodic pump so memory stays bounded, then closes. Also closes its end
/// when the remote closes first.
class BulkHttpServer {
 public:
  BulkHttpServer(tcp::TcpStack& stack, std::uint16_t port, std::uint64_t response_bytes);

  std::uint64_t connections_accepted() const { return connections_accepted_; }

 private:
  struct PerConnection;
  void pump(tcp::TcpEndpoint* endpoint, std::shared_ptr<PerConnection> state);

  tcp::TcpStack& stack_;
  std::uint64_t response_bytes_;
  std::uint64_t connections_accepted_ = 0;

  static constexpr std::size_t kChunk = 64 * 1024;       ///< send-buffer top-up target
  static constexpr Duration kPumpInterval = Duration::millis(10);
};

/// HTTP-like bulk client (wget). Connects at construction.
class BulkHttpClient {
 public:
  /// If `exit_after` is set, the client application exits abruptly that long
  /// after connecting (see TcpEndpoint::app_exit).
  BulkHttpClient(tcp::TcpStack& stack, sim::Address server, std::uint16_t port,
                 std::optional<Duration> exit_after = std::nullopt);

  std::uint64_t bytes_received() const { return bytes_received_; }
  bool established() const { return established_; }
  bool reset() const { return reset_; }
  tcp::TcpEndpoint& endpoint() { return *endpoint_; }

 private:
  std::uint64_t bytes_received_ = 0;
  bool established_ = false;
  bool reset_ = false;
  tcp::TcpEndpoint* endpoint_ = nullptr;
};

}  // namespace snake::apps
