// Bulk-transfer applications over TCP — the reproduction of the paper's
// test workload: "a large HTTP download with Apache or IIS running on the
// servers and wget for clients".
//
// The server streams a large response; the client counts received bytes.
// The client can be told to exit abruptly mid-download (app_exit), modeling
// wget being terminated while data is in flight — the precondition for the
// CLOSE_WAIT Resource Exhaustion attack.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tcp/stack.h"
#include "util/time.h"

namespace snake::apps {

/// HTTP-like bulk server. Accepts connections on `port` and streams
/// `response_bytes` to each, topping up the socket's send buffer from a
/// periodic pump so memory stays bounded, then closes. Also closes its end
/// when the remote closes first.
class BulkHttpServer {
 public:
  BulkHttpServer(tcp::TcpStack& stack, std::uint16_t port, std::uint64_t response_bytes);

  std::uint64_t connections_accepted() const { return connections_accepted_; }

  struct PerConnection;

  /// Mutable server state frozen between two scheduler events. Per-connection
  /// pump state lives in shared objects referenced both here and by cloned
  /// scheduler closures; restore writes the frozen values back INTO those
  /// same objects, so every closure cloned from the snapshot observes the
  /// rewound state.
  struct Snapshot {
    std::uint64_t connections_accepted = 0;
    struct Conn {
      std::shared_ptr<PerConnection> object;
      std::uint64_t queued = 0;
      bool closed = false;
    };
    std::vector<Conn> conns;
  };
  Snapshot capture() const;
  void restore(const Snapshot& snap);

 private:
  void pump(tcp::TcpEndpoint* endpoint, std::shared_ptr<PerConnection> state);

  tcp::TcpStack& stack_;
  std::uint64_t response_bytes_;
  std::uint64_t connections_accepted_ = 0;
  /// Every PerConnection ever created, in accept order — the snapshot layer's
  /// handle on pump state otherwise reachable only through closures.
  std::vector<std::shared_ptr<PerConnection>> registry_;
  /// Reused pump chunk. send() copies it into the socket's buffer, so the
  /// only live state is inside one pump call; reusing the storage keeps the
  /// per-pump cost at one pattern fill instead of alloc + zero-init + fill.
  Bytes chunk_scratch_;

  static constexpr std::size_t kChunk = 64 * 1024;       ///< send-buffer top-up target
  static constexpr Duration kPumpInterval = Duration::millis(10);
};

/// HTTP-like bulk client (wget). Connects at construction.
class BulkHttpClient {
 public:
  /// If `exit_after` is set, the client application exits abruptly that long
  /// after connecting (see TcpEndpoint::app_exit).
  BulkHttpClient(tcp::TcpStack& stack, sim::Address server, std::uint16_t port,
                 std::optional<Duration> exit_after = std::nullopt);

  std::uint64_t bytes_received() const { return bytes_received_; }
  bool established() const { return established_; }
  bool reset() const { return reset_; }
  tcp::TcpEndpoint& endpoint() { return *endpoint_; }

  /// Mutable client state (the endpoint pointer is session-stable).
  struct Snapshot {
    std::uint64_t bytes_received = 0;
    bool established = false;
    bool reset = false;
  };
  Snapshot capture() const { return Snapshot{bytes_received_, established_, reset_}; }
  void restore(const Snapshot& snap) {
    bytes_received_ = snap.bytes_received;
    established_ = snap.established;
    reset_ = snap.reset;
  }

 private:
  std::uint64_t bytes_received_ = 0;
  bool established_ = false;
  bool reset_ = false;
  tcp::TcpEndpoint* endpoint_ = nullptr;
};

}  // namespace snake::apps
