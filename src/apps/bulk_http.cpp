#include "apps/bulk_http.h"

#include <memory>

namespace snake::apps {

struct BulkHttpServer::PerConnection {
  std::uint64_t queued = 0;  ///< bytes handed to the socket so far
  bool closed = false;
};

BulkHttpServer::BulkHttpServer(tcp::TcpStack& stack, std::uint16_t port,
                               std::uint64_t response_bytes)
    : stack_(stack), response_bytes_(response_bytes) {
  stack_.listen(port, [this](tcp::TcpEndpoint& ep) {
    ++connections_accepted_;
    auto state = std::make_shared<PerConnection>();
    tcp::TcpCallbacks cb;
    cb.on_established = [this, &ep, state] { pump(&ep, state); };
    cb.on_remote_close = [&ep] { ep.close(); };
    return cb;
  });
}

void BulkHttpServer::pump(tcp::TcpEndpoint* endpoint, std::shared_ptr<PerConnection> state) {
  if (state->closed || endpoint->released()) return;
  // Top the send buffer up to one chunk; stop once the full response has
  // been handed over, then close like an HTTP/1.0 server would.
  while (state->queued < response_bytes_ && endpoint->send_queue_bytes() < kChunk) {
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, response_bytes_ - state->queued));
    Bytes chunk(n);
    for (std::size_t i = 0; i < n; ++i)
      chunk[i] = static_cast<std::uint8_t>((state->queued + i) * 31);
    endpoint->send(chunk);
    state->queued += n;
  }
  if (state->queued >= response_bytes_ && endpoint->send_queue_bytes() == 0) {
    state->closed = true;
    endpoint->close();
    return;
  }
  stack_.node().scheduler().schedule_in(kPumpInterval,
                                        [this, endpoint, state] { pump(endpoint, state); });
}

BulkHttpClient::BulkHttpClient(tcp::TcpStack& stack, sim::Address server, std::uint16_t port,
                               std::optional<Duration> exit_after) {
  tcp::TcpCallbacks cb;
  cb.on_established = [this] { established_ = true; };
  cb.on_data = [this](const Bytes& chunk) { bytes_received_ += chunk.size(); };
  cb.on_reset = [this] { reset_ = true; };
  cb.on_remote_close = [this] {
    if (endpoint_ != nullptr) endpoint_->close();  // download complete
  };
  endpoint_ = &stack.connect(server, port, std::move(cb));
  if (exit_after.has_value()) {
    stack.node().scheduler().schedule_in(*exit_after, [this] {
      if (!endpoint_->released()) endpoint_->app_exit();
    });
  }
}

}  // namespace snake::apps
