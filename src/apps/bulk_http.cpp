#include "apps/bulk_http.h"

#include <array>
#include <cstring>
#include <memory>

namespace snake::apps {

namespace {

// The response byte at absolute offset q is (q * 31) & 0xFF, which has
// period 256. A doubled table lets any 256-byte window starting at q % 256
// be copied in one memcpy instead of a byte-at-a-time multiply loop (this
// fill was ~20% of a campaign profile).
constexpr std::size_t kPatternPeriod = 256;

const std::uint8_t* pattern_table() {
  static const std::array<std::uint8_t, 2 * kPatternPeriod> table = [] {
    std::array<std::uint8_t, 2 * kPatternPeriod> t{};
    for (std::size_t k = 0; k < t.size(); ++k)
      t[k] = static_cast<std::uint8_t>(k * 31);
    return t;
  }();
  return table.data();
}

void fill_response_pattern(Bytes& chunk, std::uint64_t offset) {
  const std::uint8_t* table = pattern_table();
  std::size_t i = 0;
  while (i < chunk.size()) {
    std::size_t phase = static_cast<std::size_t>((offset + i) % kPatternPeriod);
    std::size_t run = std::min(chunk.size() - i, kPatternPeriod);
    std::memcpy(chunk.data() + i, table + phase, run);
    i += run;
  }
}

}  // namespace

struct BulkHttpServer::PerConnection {
  std::uint64_t queued = 0;  ///< bytes handed to the socket so far
  bool closed = false;
};

BulkHttpServer::BulkHttpServer(tcp::TcpStack& stack, std::uint16_t port,
                               std::uint64_t response_bytes)
    : stack_(stack), response_bytes_(response_bytes) {
  stack_.listen(port, [this](tcp::TcpEndpoint& ep) {
    ++connections_accepted_;
    auto state = std::make_shared<PerConnection>();
    registry_.push_back(state);
    tcp::TcpCallbacks cb;
    cb.on_established = [this, &ep, state] { pump(&ep, state); };
    cb.on_remote_close = [&ep] { ep.close(); };
    return cb;
  });
}

void BulkHttpServer::pump(tcp::TcpEndpoint* endpoint, std::shared_ptr<PerConnection> state) {
  if (state->closed || endpoint->released()) return;
  // Top the send buffer up to one chunk; stop once the full response has
  // been handed over, then close like an HTTP/1.0 server would.
  while (state->queued < response_bytes_ && endpoint->send_queue_bytes() < kChunk) {
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, response_bytes_ - state->queued));
    chunk_scratch_.resize(n);
    fill_response_pattern(chunk_scratch_, state->queued);
    endpoint->send(chunk_scratch_);
    state->queued += n;
  }
  if (state->queued >= response_bytes_ && endpoint->send_queue_bytes() == 0) {
    state->closed = true;
    endpoint->close();
    return;
  }
  stack_.node().scheduler().schedule_in(kPumpInterval,
                                        [this, endpoint, state] { pump(endpoint, state); });
}

BulkHttpServer::Snapshot BulkHttpServer::capture() const {
  Snapshot snap;
  snap.connections_accepted = connections_accepted_;
  snap.conns.reserve(registry_.size());
  for (const auto& state : registry_)
    snap.conns.push_back(Snapshot::Conn{state, state->queued, state->closed});
  return snap;
}

void BulkHttpServer::restore(const Snapshot& snap) {
  connections_accepted_ = snap.connections_accepted;
  registry_.clear();
  for (const auto& conn : snap.conns) {
    conn.object->queued = conn.queued;
    conn.object->closed = conn.closed;
    registry_.push_back(conn.object);
  }
}

BulkHttpClient::BulkHttpClient(tcp::TcpStack& stack, sim::Address server, std::uint16_t port,
                               std::optional<Duration> exit_after) {
  tcp::TcpCallbacks cb;
  cb.on_established = [this] { established_ = true; };
  cb.on_data = [this](const Bytes& chunk) { bytes_received_ += chunk.size(); };
  cb.on_reset = [this] { reset_ = true; };
  cb.on_remote_close = [this] {
    if (endpoint_ != nullptr) endpoint_->close();  // download complete
  };
  endpoint_ = &stack.connect(server, port, std::move(cb));
  if (exit_after.has_value()) {
    stack.node().scheduler().schedule_in(*exit_after, [this] {
      if (!endpoint_->released()) endpoint_->app_exit();
    });
  }
}

}  // namespace snake::apps
