// iperf-like measurement applications over DCCP — the paper's DCCP workload
// ("For DCCP testing, we used iperf to measure throughput ... we measured
// performance based on server goodput, or actual data received").
#pragma once

#include <cstdint>
#include <functional>

#include "dccp/stack.h"
#include "util/time.h"

namespace snake::apps {

/// Receives datagrams on `port` and counts goodput.
class DccpIperfSink {
 public:
  DccpIperfSink(dccp::DccpStack& stack, std::uint16_t port,
                dccp::DccpEndpointConfig accept_config = {});

  std::uint64_t goodput_bytes() const { return goodput_bytes_; }
  std::uint64_t connections_accepted() const { return connections_accepted_; }

  /// Mutable sink state for the snapshot layer.
  struct Snapshot {
    std::uint64_t goodput_bytes = 0;
    std::uint64_t connections_accepted = 0;
  };
  Snapshot capture() const { return Snapshot{goodput_bytes_, connections_accepted_}; }
  void restore(const Snapshot& snap) {
    goodput_bytes_ = snap.goodput_bytes;
    connections_accepted_ = snap.connections_accepted;
  }

 private:
  std::uint64_t goodput_bytes_ = 0;
  std::uint64_t connections_accepted_ = 0;
};

/// Streams constant-rate datagrams for `duration`, then closes.
class DccpIperfSource {
 public:
  struct Options {
    double offer_rate_pps = 2000;
    std::size_t payload_bytes = 1000;
    Duration duration = Duration::seconds(20.0);
    std::size_t tx_queue_packets = 10;
    int ccid = 2;  ///< 2 = TCP-like, 3 = TFRC
  };

  DccpIperfSource(dccp::DccpStack& stack, sim::Address server, std::uint16_t port,
                  Options options);

  bool established() const { return established_; }
  bool reset() const { return reset_; }
  std::uint64_t datagrams_offered() const { return offered_; }
  dccp::DccpEndpoint& endpoint() { return *endpoint_; }

  /// Mutable source state (stop_at_ and the endpoint pointer are fixed at
  /// construction and session-stable; tick events live in the scheduler).
  struct Snapshot {
    bool established = false;
    bool reset = false;
    bool closed = false;
    std::uint64_t offered = 0;
  };
  Snapshot capture() const { return Snapshot{established_, reset_, closed_, offered_}; }
  void restore(const Snapshot& snap) {
    established_ = snap.established;
    reset_ = snap.reset;
    closed_ = snap.closed;
    offered_ = snap.offered;
  }

 private:
  void tick();

  dccp::DccpStack& stack_;
  Options options_;
  dccp::DccpEndpoint* endpoint_ = nullptr;
  TimePoint stop_at_;
  bool established_ = false;
  bool reset_ = false;
  bool closed_ = false;
  std::uint64_t offered_ = 0;
};

}  // namespace snake::apps
