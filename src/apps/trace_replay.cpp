#include "apps/trace_replay.h"

#include <algorithm>

namespace snake::apps {

namespace {

/// Replay payload byte at absolute stream offset q. A different multiplier
/// than the bulk-download pattern so a mixed-up stream shows up in hexdumps.
void fill_replay_pattern(Bytes& chunk, std::uint64_t offset) {
  for (std::size_t i = 0; i < chunk.size(); ++i)
    chunk[i] = static_cast<std::uint8_t>((offset + i) * 131 + 7);
}

/// Delay from now until trace instant `at_s` (clamped: bursts whose recorded
/// time already passed — e.g. a handshake delayed by an attack — fire
/// immediately, preserving the flow's total byte count).
Duration until(const sim::Scheduler& scheduler, TimePoint epoch, double at_s) {
  TimePoint target = epoch + Duration::seconds(at_s);
  TimePoint now = scheduler.now();
  return target > now ? target - now : Duration::zero();
}

}  // namespace

// --------------------------------------------------------- TraceReplayServer

struct TraceReplayServer::PerConnection {
  /// Schedule paired at accept; nullptr for spurious connections beyond the
  /// plan. Points into the shared plan, which outlives every snapshot.
  const trace::FlowSchedule* flow = nullptr;
};

TraceReplayServer::TraceReplayServer(tcp::TcpStack& stack, std::uint16_t port,
                                     std::shared_ptr<const trace::ReplayPlan> plan)
    : stack_(stack), plan_(std::move(plan)), epoch_(stack.node().scheduler().now()) {
  stack_.listen(port, [this](tcp::TcpEndpoint& ep) {
    auto state = std::make_shared<PerConnection>();
    if (connections_accepted_ < plan_->flows.size())
      state->flow = &plan_->flows[connections_accepted_];
    ++connections_accepted_;
    registry_.push_back(state);
    tcp::TcpCallbacks cb;
    cb.on_established = [this, &ep, state] { play_flow(&ep, state); };
    cb.on_remote_close = [&ep] { ep.close(); };
    return cb;
  });
}

void TraceReplayServer::play_flow(tcp::TcpEndpoint* endpoint,
                                  std::shared_ptr<PerConnection> state) {
  if (state->flow == nullptr) return;
  sim::Scheduler& scheduler = stack_.node().scheduler();
  // One timer per burst, at the burst's absolute trace instant. Offsets are
  // prefix sums, fixed by the plan — no mutable per-burst state, so a
  // restored snapshot replays the identical bytes.
  std::uint64_t offset = 0;
  for (const trace::FlowTransfer& t : state->flow->transfers) {
    if (t.server_bytes == 0) continue;
    const std::uint64_t burst_offset = offset;
    const std::uint64_t n = t.server_bytes;
    scheduler.schedule_in(until(scheduler, epoch_, t.at_s), [endpoint, burst_offset, n] {
      if (endpoint->released()) return;
      Bytes chunk(static_cast<std::size_t>(n));
      fill_replay_pattern(chunk, burst_offset);
      endpoint->send(chunk);
    });
    offset += n;
  }
}

TraceReplayServer::Snapshot TraceReplayServer::capture() const {
  Snapshot snap;
  snap.connections_accepted = connections_accepted_;
  snap.conns = registry_;
  return snap;
}

void TraceReplayServer::restore(const Snapshot& snap) {
  connections_accepted_ = snap.connections_accepted;
  registry_ = snap.conns;
}

// --------------------------------------------------------- TraceReplayClient

struct TraceReplayClient::PerFlow {
  bool opened = false;
  bool established = false;
  bool reset = false;
  bool closed = false;  ///< scheduled close fired
  std::uint64_t bytes_received = 0;
  tcp::TcpEndpoint* endpoint = nullptr;
};

TraceReplayClient::TraceReplayClient(tcp::TcpStack& stack, sim::Address server,
                                     std::uint16_t port,
                                     std::shared_ptr<const trace::ReplayPlan> plan,
                                     std::optional<Duration> exit_after)
    : stack_(stack),
      server_(server),
      port_(port),
      plan_(std::move(plan)),
      epoch_(stack.node().scheduler().now()) {
  sim::Scheduler& scheduler = stack_.node().scheduler();
  flows_.reserve(plan_->flows.size());
  for (std::size_t i = 0; i < plan_->flows.size(); ++i) {
    flows_.push_back(std::make_shared<PerFlow>());
    scheduler.schedule_in(until(scheduler, epoch_, plan_->flows[i].open_at_s),
                          [this, i] { open_flow(i); });
  }
  if (exit_after.has_value()) {
    scheduler.schedule_in(*exit_after, [this] {
      exited_ = true;
      for (const auto& flow : flows_)
        if (flow->endpoint != nullptr && !flow->endpoint->released())
          flow->endpoint->app_exit();
    });
  }
}

void TraceReplayClient::open_flow(std::size_t index) {
  if (exited_) return;
  const trace::FlowSchedule& schedule = plan_->flows[index];
  std::shared_ptr<PerFlow> state = flows_[index];
  sim::Scheduler& scheduler = stack_.node().scheduler();

  tcp::TcpCallbacks cb;
  cb.on_established = [this, index, state] {
    state->established = true;
    sim::Scheduler& scheduler = stack_.node().scheduler();
    // Client bursts are scheduled at establish time so a delayed handshake
    // pushes them to "now" instead of silently dropping them.
    const trace::FlowSchedule& flow = plan_->flows[index];
    std::uint64_t offset = 0;
    for (const trace::FlowTransfer& t : flow.transfers) {
      if (t.client_bytes == 0) continue;
      const std::uint64_t burst_offset = offset;
      const std::uint64_t n = t.client_bytes;
      scheduler.schedule_in(until(scheduler, epoch_, t.at_s), [this, state, burst_offset, n] {
        if (exited_ || state->endpoint == nullptr || state->endpoint->released()) return;
        Bytes chunk(static_cast<std::size_t>(n));
        fill_replay_pattern(chunk, burst_offset);
        state->endpoint->send(chunk);
      });
      offset += n;
    }
  };
  cb.on_data = [state](const Bytes& chunk) { state->bytes_received += chunk.size(); };
  cb.on_reset = [state] { state->reset = true; };
  cb.on_remote_close = [state] {
    if (state->endpoint != nullptr && !state->endpoint->released()) state->endpoint->close();
  };
  state->endpoint = &stack_.connect(server_, port_, std::move(cb));
  state->opened = true;
  ++flows_opened_;

  if (schedule.close_at_s.has_value()) {
    scheduler.schedule_in(until(scheduler, epoch_, *schedule.close_at_s), [this, state] {
      state->closed = true;
      if (exited_ || state->endpoint == nullptr || state->endpoint->released()) return;
      state->endpoint->close();
    });
  }
}

std::uint64_t TraceReplayClient::bytes_received() const {
  std::uint64_t total = 0;
  for (const auto& flow : flows_) total += flow->bytes_received;
  return total;
}

bool TraceReplayClient::established() const {
  for (const auto& flow : flows_)
    if (flow->established) return true;
  return false;
}

bool TraceReplayClient::reset() const {
  for (const auto& flow : flows_)
    if (flow->reset) return true;
  return false;
}

TraceReplayClient::Snapshot TraceReplayClient::capture() const {
  Snapshot snap;
  snap.exited = exited_;
  snap.flows_opened = flows_opened_;
  snap.flows.reserve(flows_.size());
  for (const auto& flow : flows_)
    snap.flows.push_back(Snapshot::Flow{flow, flow->opened, flow->established, flow->reset,
                                        flow->closed, flow->bytes_received, flow->endpoint});
  return snap;
}

void TraceReplayClient::restore(const Snapshot& snap) {
  exited_ = snap.exited;
  flows_opened_ = snap.flows_opened;
  for (const auto& f : snap.flows) {
    f.object->opened = f.opened;
    f.object->established = f.established;
    f.object->reset = f.reset;
    f.object->closed = f.closed;
    f.object->bytes_received = f.bytes_received;
    f.object->endpoint = f.endpoint;
  }
}

}  // namespace snake::apps
