// Trace-replay applications over TCP: the client opens one connection per
// flow of a trace::ReplayPlan at the flow's recorded open time, both sides
// push their recorded byte bursts at the recorded instants, and the client
// closes flows that have a close record. This swaps the paper's synthetic
// bulk-download workload for traffic shaped like a recorded deployment
// while keeping trials bit-reproducible: every action is driven off the
// deterministic scheduler, so the same (plan, seed, strategy) replays
// identically on every backend.
//
// Pairing: the server matches its k-th accepted connection with the k-th
// flow of the plan (plan order == client open order). Honest runs pair
// exactly; an attack that drops or reorders handshakes can shift the
// pairing, which is fine — the perturbed workload is still deterministic
// for that strategy, and a real server would not know flow identities
// either. Spurious connections beyond the plan (e.g. forged SYNs) are
// accepted with an empty schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tcp/stack.h"
#include "trace/trace.h"
#include "util/time.h"

namespace snake::apps {

/// Server half: accepts on `port`, plays each paired flow's `recv` bursts
/// (server -> client bytes) at their recorded times, closes when the client
/// does.
class TraceReplayServer {
 public:
  TraceReplayServer(tcp::TcpStack& stack, std::uint16_t port,
                    std::shared_ptr<const trace::ReplayPlan> plan);

  std::uint64_t connections_accepted() const { return connections_accepted_; }

  struct PerConnection;

  /// Same discipline as BulkHttpServer::Snapshot: per-connection state lives
  /// in shared objects referenced by scheduler closures; restore writes the
  /// frozen values back INTO those objects.
  struct Snapshot {
    std::uint64_t connections_accepted = 0;
    std::vector<std::shared_ptr<PerConnection>> conns;
  };
  Snapshot capture() const;
  void restore(const Snapshot& snap);

 private:
  void play_flow(tcp::TcpEndpoint* endpoint, std::shared_ptr<PerConnection> state);

  tcp::TcpStack& stack_;
  std::shared_ptr<const trace::ReplayPlan> plan_;
  TimePoint epoch_;  ///< trace t=0 in scheduler time (construction instant)
  std::uint64_t connections_accepted_ = 0;
  std::vector<std::shared_ptr<PerConnection>> registry_;
};

/// Client half: opens the plan's flows at their recorded times, plays each
/// flow's `send` bursts, closes at the recorded close instant, and counts
/// server bytes received across all flows (the campaign detector's
/// target-performance signal). If `exit_after` is set, the client process
/// "dies" at that instant: every live connection app_exit()s and no further
/// flows open — the trace-workload analogue of wget being killed
/// mid-download, preserving reachability of teardown-phase attacks.
class TraceReplayClient {
 public:
  TraceReplayClient(tcp::TcpStack& stack, sim::Address server, std::uint16_t port,
                    std::shared_ptr<const trace::ReplayPlan> plan,
                    std::optional<Duration> exit_after = std::nullopt);

  /// Total server->client payload bytes delivered across all flows.
  std::uint64_t bytes_received() const;
  /// True once any flow completed its handshake / was reset.
  bool established() const;
  bool reset() const;
  std::uint64_t flows_opened() const { return flows_opened_; }

  struct PerFlow;

  struct Snapshot {
    bool exited = false;
    std::uint64_t flows_opened = 0;
    struct Flow {
      std::shared_ptr<PerFlow> object;
      bool opened = false, established = false, reset = false, closed = false;
      std::uint64_t bytes_received = 0;
      tcp::TcpEndpoint* endpoint = nullptr;
    };
    std::vector<Flow> flows;
  };
  Snapshot capture() const;
  void restore(const Snapshot& snap);

 private:
  void open_flow(std::size_t index);

  tcp::TcpStack& stack_;
  sim::Address server_;
  std::uint16_t port_;
  std::shared_ptr<const trace::ReplayPlan> plan_;
  TimePoint epoch_;
  bool exited_ = false;
  std::uint64_t flows_opened_ = 0;
  /// One entry per plan flow, created at construction (fixed registry).
  std::vector<std::shared_ptr<PerFlow>> flows_;
};

}  // namespace snake::apps
