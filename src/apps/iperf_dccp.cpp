#include "apps/iperf_dccp.h"

namespace snake::apps {

DccpIperfSink::DccpIperfSink(dccp::DccpStack& stack, std::uint16_t port,
                             dccp::DccpEndpointConfig accept_config) {
  stack.listen(
      port,
      [this](dccp::DccpEndpoint&) {
        ++connections_accepted_;
        dccp::DccpCallbacks cb;
        cb.on_data = [this](const Bytes& d) { goodput_bytes_ += d.size(); };
        return cb;
      },
      accept_config);
}

DccpIperfSource::DccpIperfSource(dccp::DccpStack& stack, sim::Address server,
                                 std::uint16_t port, Options options)
    : stack_(stack), options_(options) {
  stop_at_ = stack.node().scheduler().now() + options_.duration;
  dccp::DccpCallbacks cb;
  cb.on_established = [this] { established_ = true; };
  cb.on_reset = [this] { reset_ = true; };
  dccp::DccpEndpointConfig config;
  config.tx_queue_packets = options_.tx_queue_packets;
  config.ccid = options_.ccid;
  config.ccid3_segment_bytes = options_.payload_bytes + 24;
  endpoint_ = &stack.connect(server, port, std::move(cb), config);
  tick();
}

void DccpIperfSource::tick() {
  if (endpoint_->released()) return;
  auto& sched = stack_.node().scheduler();
  if (sched.now() >= stop_at_) {
    if (!closed_) {
      closed_ = true;
      endpoint_->close();  // waits for the transmit queue to drain
    }
    return;
  }
  ++offered_;
  endpoint_->send(Bytes(options_.payload_bytes, 0x42));
  sched.schedule_in(Duration::seconds(1.0 / options_.offer_rate_pps), [this] { tick(); });
}

}  // namespace snake::apps
