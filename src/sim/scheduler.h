// Discrete-event scheduler — the heart of the network emulator substrate.
//
// The paper runs SNAKE scenarios inside NS-3; this scheduler plays NS-3's
// role. Events execute in strict (time, insertion-order) order, which makes
// every scenario bit-for-bit reproducible for a given seed. Timers are
// cancellable handles so protocol endpoints can manage retransmission and
// delayed-ACK timers naturally.
//
// Memory model: events live in a slab of pooled slots recycled through a
// free list, callbacks are stored in place (util::SmallFunction), and the
// ready queue is a binary heap of plain {time, seq, slot} records — the
// common schedule/fire/cancel cycle allocates nothing once the slab is
// warm. The scheduler also owns the scenario's packet BufferPool so every
// component on the data path (links, nodes, transport stacks) can recycle
// wire buffers without a second ownership channel. reset() rewinds the
// scheduler to its initial state while keeping slab and buffer capacity,
// which is what lets a campaign executor's ScenarioArena reuse one
// scheduler across thousands of strategy trials.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/pool.h"
#include "util/time.h"

namespace snake::obs {
class MetricsRegistry;
}

namespace snake::sim {

class Scheduler;

/// Trial watchdog limits for one run_until episode. A runaway scenario (event
/// storm, virtual clock that stops advancing while callbacks burn wall time)
/// is cut off instead of hanging its executor; the campaign layer records the
/// trial as aborted and moves on.
struct WatchdogConfig {
  /// Abort after this many events (executed + cancelled) since arming.
  /// 0 = no event budget.
  std::uint64_t max_events = 0;
  /// Abort once this much wall-clock time has elapsed since arming, checked
  /// every kWallCheckInterval events so the hot loop never pays a clock read
  /// per event. 0 = no wall deadline.
  double wall_seconds = 0.0;
};

/// Why (whether) the armed watchdog stopped a run.
enum class WatchdogTrip : std::uint8_t { kNone, kEventBudget, kWallClock };

const char* to_string(WatchdogTrip trip);

/// Cancellable handle to a scheduled event. Copies share the same underlying
/// event; cancelling any copy cancels the event. Default-constructed handles
/// are inert. A handle refers to its slot by (index, generation), so handles
/// that outlive their event — or whose slot was recycled for a newer event —
/// safely report !pending(). Handles must not outlive the scheduler itself
/// (endpoints and apps are always torn down or reset before it).
class Timer {
 public:
  Timer() = default;

  inline void cancel();
  inline bool pending() const;

 private:
  friend class Scheduler;
  Timer(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  template <typename F>
  Timer schedule_at(TimePoint at, F&& fn) {
    return do_schedule(at, SmallFunction(std::forward<F>(fn)));
  }

  /// Schedules `fn` after `delay` of virtual time.
  template <typename F>
  Timer schedule_in(Duration delay, F&& fn) {
    return do_schedule(now_ + delay, SmallFunction(std::forward<F>(fn)));
  }

  /// Runs events until the queue is empty, virtual time would pass `until`,
  /// or the armed watchdog trips (see arm_watchdog).
  void run_until(TimePoint until);

  /// Runs until the event queue drains completely.
  void run_all();

  /// Pops exactly `count` heap entries (executed or cancelled both count) with
  /// no time horizon, stopping early only if the queue drains or the watchdog
  /// trips. Returns the number of entries actually popped. The clock is left
  /// at the last popped event's time — never advanced past it — so the
  /// scheduler sits exactly on an event boundary, which is what the snapshot
  /// layer needs to checkpoint between two events of a deterministic run.
  std::uint64_t run_events(std::uint64_t count);

  /// Arms (or, with a default-constructed config, disarms) the watchdog for
  /// subsequent run_until work. Budgets count from the moment of arming; any
  /// previous trip is cleared. Disarmed costs the hot loop two predictable
  /// branches per event.
  void arm_watchdog(const WatchdogConfig& config);

  /// Why the last run_until stopped early (kNone when it ran to its horizon).
  /// Once tripped, further run_until calls return immediately until the
  /// watchdog is re-armed or the scheduler reset.
  WatchdogTrip watchdog_trip() const { return watchdog_trip_; }

  /// How often (in events) the wall-clock deadline is polled.
  static constexpr std::uint32_t kWallCheckInterval = 64;

  bool empty() const { return heap_.empty(); }
  std::uint64_t events_executed() const { return executed_; }
  /// Events popped whose timer had been cancelled before they fired.
  std::uint64_t events_cancelled() const { return cancelled_; }

  /// The scenario-wide recycled packet-buffer pool. Links, nodes and
  /// transport stacks acquire wire buffers here and release them at the
  /// point a packet dies (delivery or drop).
  BufferPool& buffer_pool() { return buffers_; }

  /// Event-slot slab size / current free-list depth (pool observability).
  std::size_t event_pool_slots() const { return slots_.size(); }
  std::size_t event_pool_free() const { return free_.size(); }

  /// Rewinds to a just-constructed state — pending events destroyed, clock
  /// at origin, counters zeroed — while keeping the event slab and buffer
  /// pool capacity warm. Outstanding Timer handles become inert.
  void reset();

  /// Heap record: 24 bytes, trivially copyable, no ownership. Public only so
  /// Snapshot can embed the ready queue verbatim.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const HeapEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Deep-frozen scheduler state captured between two events. A Snapshot
  /// preserves slot indices and generations bit-for-bit, so Timer handles
  /// captured alongside it (inside endpoint/app state) remain valid against
  /// the restored slot table. Armed callbacks are stored as clones and are
  /// re-cloned on every restore, so one Snapshot can seed many forked runs.
  /// Move-only (SmallFunction is move-only).
  struct Snapshot {
    struct Slot {
      SmallFunction fn;  ///< clone of the armed callback; empty when !armed
      std::uint32_t generation = 0;
      bool armed = false;
    };
    std::vector<Slot> slots;
    std::vector<HeapEntry> heap;
    std::vector<std::uint32_t> free_slots;
    TimePoint now = TimePoint::origin();
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t watchdog_event_limit = 0;
    double watchdog_wall_seconds = 0.0;  ///< wall deadline is re-armed fresh
    bool watchdog_wall_armed = false;
  };

  /// Captures the full scheduler state into `out`. Returns false (leaving
  /// `out` unspecified) when the state cannot be checkpointed: the watchdog
  /// has tripped, or some armed callback holds a non-copyable capture.
  bool capture(Snapshot& out) const;

  /// Restores state captured by capture(). The wall-clock watchdog deadline
  /// is re-armed relative to the current wall time (virtual state is exact;
  /// wall budgets are per-episode by design). Timer handles referring to
  /// slots beyond the snapshot's slab safely report !pending() afterwards.
  void restore(const Snapshot& snap);

  /// Dumps scheduler counters (events executed/cancelled, virtual time
  /// advanced, pool activity) into the registry under the "sim." prefix.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  friend class Timer;

  /// One pooled event. `generation` increments on every release, so stale
  /// Timer handles (and queue entries, though those can't outlive the slot
  /// in practice) never touch a recycled event.
  struct EventSlot {
    SmallFunction fn;
    std::uint32_t generation = 0;
    bool armed = false;
  };

  Timer do_schedule(TimePoint at, SmallFunction fn);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  bool timer_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].armed;
  }
  void timer_cancel(std::uint32_t slot, std::uint32_t generation) {
    if (timer_pending(slot, generation)) slots_[slot].armed = false;
  }

  std::vector<HeapEntry> heap_;  ///< min-heap via std::push_heap/pop_heap
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_;
  BufferPool buffers_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;

  // Watchdog state: event_limit is an absolute (executed_ + cancelled_)
  // threshold computed at arm time, 0 when disarmed.
  std::uint64_t watchdog_event_limit_ = 0;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
  double watchdog_wall_seconds_ = 0.0;  ///< last armed wall budget, for capture()
  bool watchdog_wall_armed_ = false;
  std::uint32_t watchdog_wall_countdown_ = kWallCheckInterval;
  WatchdogTrip watchdog_trip_ = WatchdogTrip::kNone;
  std::uint64_t watchdog_trips_total_ = 0;  ///< for export_metrics
};

inline void Timer::cancel() {
  if (scheduler_ != nullptr) scheduler_->timer_cancel(slot_, generation_);
}

inline bool Timer::pending() const {
  return scheduler_ != nullptr && scheduler_->timer_pending(slot_, generation_);
}

}  // namespace snake::sim
