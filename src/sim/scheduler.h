// Discrete-event scheduler — the heart of the network emulator substrate.
//
// The paper runs SNAKE scenarios inside NS-3; this scheduler plays NS-3's
// role. Events execute in strict (time, insertion-order) order, which makes
// every scenario bit-for-bit reproducible for a given seed. Timers are
// cancellable handles so protocol endpoints can manage retransmission and
// delayed-ACK timers naturally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace snake::obs {
class MetricsRegistry;
}

namespace snake::sim {

/// Cancellable handle to a scheduled event. Copies share the same underlying
/// event; cancelling any copy cancels the event. Default-constructed handles
/// are inert.
class Timer {
 public:
  Timer() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Scheduler;
  explicit Timer(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  Timer schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` after `delay` of virtual time.
  Timer schedule_in(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or virtual time would pass `until`.
  void run_until(TimePoint until);

  /// Runs until the event queue drains completely.
  void run_all();

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_executed() const { return executed_; }
  /// Events popped whose timer had been cancelled before they fired.
  std::uint64_t events_cancelled() const { return cancelled_; }

  /// Dumps scheduler counters (events executed/cancelled, virtual time
  /// advanced) into the registry under the "sim." prefix.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    // Shared (not inline) so entries can be copied out of priority_queue's
    // const top() without const_cast tricks — mutating top() through
    // const_cast was undefined behaviour (see tests/sim_test.cpp regression).
    std::shared_ptr<std::function<void()>> fn;
    std::shared_ptr<bool> alive;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace snake::sim
