// Discrete-event scheduler — the heart of the network emulator substrate.
//
// The paper runs SNAKE scenarios inside NS-3; this scheduler plays NS-3's
// role. Events execute in strict (time, insertion-order) order, which makes
// every scenario bit-for-bit reproducible for a given seed. Timers are
// cancellable handles so protocol endpoints can manage retransmission and
// delayed-ACK timers naturally.
//
// Memory model: events live in a slab of pooled slots recycled through a
// free list, callbacks are stored in place (util::SmallFunction), and the
// ready queue is a hierarchical timing wheel of plain {time, seq, slot}
// records — the common schedule/fire/cancel cycle allocates nothing once
// the slab and wheel buckets are warm, and costs O(1) instead of the
// previous binary heap's O(log n). The heap remains as a runtime-selectable
// reference engine (SchedulerEngine::kBinaryHeap) that the property suite
// replays against the wheel: both engines execute every script in the exact
// same order (see DESIGN.md, "Event engine"). The scheduler also owns the
// scenario's packet BufferPool so every component on the data path (links,
// nodes, transport stacks) can recycle wire buffers without a second
// ownership channel. reset() rewinds the scheduler to its initial state
// while keeping slab and buffer capacity, which is what lets a campaign
// executor's ScenarioArena reuse one scheduler across thousands of strategy
// trials.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/pool.h"
#include "util/time.h"

namespace snake::obs {
class MetricsRegistry;
}

namespace snake::sim {

class Scheduler;

/// Which ready-queue implementation a Scheduler uses. kTimerWheel is the
/// production engine; kBinaryHeap is the O(log n) reference implementation
/// kept for differential testing (the wheel must execute every event script
/// in the heap's exact order). The engine never changes observable event
/// order — it is a pure performance/verification switch.
enum class SchedulerEngine : std::uint8_t { kTimerWheel, kBinaryHeap };

const char* to_string(SchedulerEngine engine);

/// How an event relates to a trial's observable outcome. kActive (the
/// default) marks events that can emit packets or otherwise change what a
/// scenario measures. kLazy marks pure bookkeeping whose effects are
/// invisible to detection when skipped at the end of a trial — today that is
/// exactly the TIME_WAIT expiry timers, which release a socket without
/// sending anything. The deterministic early-exit cut (see
/// run_until_quiescent) stops a run once no armed kActive event remains at
/// or before the horizon; misclassifying an effectful event as kLazy would
/// break the early-exit-on == early-exit-off equality that snapshot_test
/// and dist_test enforce, so when in doubt an event is kActive.
enum class EventClass : std::uint8_t { kActive, kLazy };

/// Trial watchdog limits for one run_until episode. A runaway scenario (event
/// storm, virtual clock that stops advancing while callbacks burn wall time)
/// is cut off instead of hanging its executor; the campaign layer records the
/// trial as aborted and moves on.
struct WatchdogConfig {
  /// Abort after this many events (executed + cancelled) since arming.
  /// 0 = no event budget.
  std::uint64_t max_events = 0;
  /// Abort once this much wall-clock time has elapsed since arming, checked
  /// every kWallCheckInterval events so the hot loop never pays a clock read
  /// per event. 0 = no wall deadline.
  double wall_seconds = 0.0;
};

/// Why (whether) the armed watchdog stopped a run.
enum class WatchdogTrip : std::uint8_t { kNone, kEventBudget, kWallClock };

const char* to_string(WatchdogTrip trip);

/// Cancellable handle to a scheduled event. Copies share the same underlying
/// event; cancelling any copy cancels the event. Default-constructed handles
/// are inert. A handle refers to its slot by (index, generation), so handles
/// that outlive their event — or whose slot was recycled for a newer event —
/// safely report !pending(). Handles must not outlive the scheduler itself
/// (endpoints and apps are always torn down or reset before it).
class Timer {
 public:
  Timer() = default;

  inline void cancel();
  inline bool pending() const;

 private:
  friend class Scheduler;
  Timer(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  Scheduler() : engine_(default_engine()) {}

  TimePoint now() const { return now_; }

  /// The process-wide engine new Schedulers start with. Defaults to the
  /// timer wheel (or the heap when built with SNAKE_SCHEDULER_HEAP_DEFAULT);
  /// tests and benches flip it to run identical workloads on both engines.
  static SchedulerEngine default_engine();
  static void set_default_engine(SchedulerEngine engine);

  SchedulerEngine engine() const { return engine_; }
  /// Switches the ready-queue engine. Only legal while the queue is empty
  /// (reset() or never used); returns false and leaves the engine unchanged
  /// otherwise.
  bool set_engine(SchedulerEngine engine);

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  template <typename F>
  Timer schedule_at(TimePoint at, F&& fn) {
    return do_schedule(at, SmallFunction(std::forward<F>(fn)), EventClass::kActive);
  }

  /// Schedules `fn` after `delay` of virtual time.
  template <typename F>
  Timer schedule_in(Duration delay, F&& fn) {
    return do_schedule(now_ + delay, SmallFunction(std::forward<F>(fn)),
                       EventClass::kActive);
  }

  /// Schedules a kLazy event (see EventClass): bookkeeping that a
  /// deterministic early-exit may leave unfired without changing any
  /// detector-visible outcome.
  template <typename F>
  Timer schedule_lazy_in(Duration delay, F&& fn) {
    return do_schedule(now_ + delay, SmallFunction(std::forward<F>(fn)),
                       EventClass::kLazy);
  }

  /// Runs events until the queue is empty, virtual time would pass `until`,
  /// or the armed watchdog trips (see arm_watchdog).
  void run_until(TimePoint until);

  /// Like run_until, but additionally stops as soon as the world is
  /// quiescent: no armed kActive event remains at or before the quiescence
  /// horizon (set_quiescence_horizon, normally the trial end). Nothing that
  /// could move a packet or change measured state can fire between the cut
  /// and the horizon, so stopping here is observationally equivalent to
  /// running out the clock — except that still-pending kLazy events (TIME_WAIT
  /// expiries) never fire. Returns true when the cut actually skipped queued
  /// in-horizon events (the run "exited early"), false when the run ended the
  /// way run_until would have. Virtual time still advances to `until` on a
  /// quiescent stop, so clock-derived metrics match the full run.
  bool run_until_quiescent(TimePoint until);

  /// Runs until the event queue drains completely.
  void run_all();

  /// Pops exactly `count` queue entries (executed or cancelled both count)
  /// with no time horizon, stopping early only if the queue drains or the
  /// watchdog trips. Returns the number of entries actually popped. The
  /// clock is left at the last popped event's time — never advanced past it
  /// — so the scheduler sits exactly on an event boundary, which is what the
  /// snapshot layer needs to checkpoint between two events of a
  /// deterministic run.
  std::uint64_t run_events(std::uint64_t count);

  /// Sets the quiescence horizon used by run_until_quiescent and recomputes
  /// the armed-active-event count for it (O(queue)). The count is maintained
  /// incrementally afterwards; it is a pure function of the event history,
  /// so the early-exit cut point is deterministic and identical between a
  /// from-zero run and a snapshot-forked run (restore() carries the horizon).
  void set_quiescence_horizon(TimePoint horizon);
  /// Armed kActive events with time <= the quiescence horizon.
  std::uint64_t active_events_in_horizon() const { return active_in_horizon_; }

  /// Arms (or, with a default-constructed config, disarms) the watchdog for
  /// subsequent run_until work. Budgets count from the moment of arming; any
  /// previous trip is cleared. Disarmed costs the hot loop two predictable
  /// branches per event.
  void arm_watchdog(const WatchdogConfig& config);

  /// Why the last run_until stopped early (kNone when it ran to its horizon).
  /// Once tripped, further run_until calls return immediately until the
  /// watchdog is re-armed or the scheduler reset.
  WatchdogTrip watchdog_trip() const { return watchdog_trip_; }

  /// How often (in events) the wall-clock deadline is polled.
  static constexpr std::uint32_t kWallCheckInterval = 64;

  bool empty() const { return queued_ == 0; }
  std::uint64_t events_executed() const { return executed_; }
  /// Events popped whose timer had been cancelled before they fired.
  std::uint64_t events_cancelled() const { return cancelled_; }

  /// The scenario-wide recycled packet-buffer pool. Links, nodes and
  /// transport stacks acquire wire buffers here and release them at the
  /// point a packet dies (delivery or drop).
  BufferPool& buffer_pool() { return buffers_; }

  /// Event-slot slab size / current free-list depth (pool observability).
  std::size_t event_pool_slots() const { return slots_.size(); }
  std::size_t event_pool_free() const { return free_.size(); }

  /// Rewinds to a just-constructed state — pending events destroyed, clock
  /// at origin, counters zeroed — while keeping the event slab and buffer
  /// pool capacity warm. Outstanding Timer handles become inert.
  void reset();

  /// Queue record: 24 bytes, trivially copyable, no ownership. Public only
  /// so Snapshot can embed the pending-event set.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const HeapEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Deep-frozen scheduler state captured between two events. A Snapshot
  /// preserves slot indices and generations bit-for-bit, so Timer handles
  /// captured alongside it (inside endpoint/app state) remain valid against
  /// the restored slot table. Armed callbacks are stored as clones and are
  /// re-cloned on every restore, so one Snapshot can seed many forked runs.
  /// Move-only (SmallFunction is move-only).
  ///
  /// The pending-event set (`heap`) is stored sorted by (at, seq) — the
  /// canonical engine-independent encoding. A sorted ascending array is a
  /// valid min-heap, so the heap engine adopts it verbatim, and the wheel
  /// engine re-places each entry; a snapshot captured under either engine
  /// restores under either engine with identical event order.
  struct Snapshot {
    struct Slot {
      SmallFunction fn;  ///< clone of the armed callback; empty when !armed
      std::uint64_t stamp = 0;  ///< schedule id of the armed event (see EventSlot)
      std::uint32_t generation = 0;
      bool armed = false;
      bool lazy = false;
    };
    std::vector<Slot> slots;
    std::vector<HeapEntry> heap;  ///< pending entries, sorted by (at, seq)
    std::vector<std::uint32_t> free_slots;
    TimePoint now = TimePoint::origin();
    TimePoint quiescence_horizon = TimePoint::max();
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t watchdog_event_limit = 0;
    double watchdog_wall_seconds = 0.0;  ///< wall deadline is re-armed fresh
    bool watchdog_wall_armed = false;
  };

  /// Captures the full scheduler state into `out`. Returns false (leaving
  /// `out` unspecified) when the state cannot be checkpointed: the watchdog
  /// has tripped, or some armed callback holds a non-copyable capture.
  bool capture(Snapshot& out) const;

  /// Restores state captured by capture(). The wall-clock watchdog deadline
  /// is re-armed relative to the current wall time (virtual state is exact;
  /// wall budgets are per-episode by design). Timer handles referring to
  /// slots beyond the snapshot's slab safely report !pending() afterwards.
  ///
  /// Copy-on-write fast path: a slot whose stamp still matches the
  /// snapshot's holds the very callback that was captured (stamps are unique
  /// per schedule call and zeroed on slot release, so a match proves the
  /// slot was never fired, released or re-armed since the capture) — the
  /// callback is kept in place instead of destroyed and re-cloned. Repeated
  /// restores of a mostly-idle world touch only the slots that changed.
  void restore(const Snapshot& snap);

  /// Dumps scheduler counters (events executed/cancelled, virtual time
  /// advanced, pool activity) into the registry under the "sim." prefix.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  friend class Timer;

  /// One pooled event. `generation` increments on every release, so stale
  /// Timer handles (and queue entries, though those can't outlive the slot
  /// in practice) never touch a recycled event. `stamp` is the globally
  /// unique id of the schedule call that armed this slot (never reused, not
  /// rewound by restore) — the snapshot layer's proof that a slot is
  /// unchanged since a capture. `at`/`lazy` duplicate the queue entry so
  /// cancellation can maintain the quiescence count without a queue lookup.
  struct EventSlot {
    SmallFunction fn;
    TimePoint at = TimePoint::origin();
    std::uint64_t stamp = 0;
    std::uint32_t generation = 0;
    bool armed = false;
    bool lazy = false;
  };

  Timer do_schedule(TimePoint at, SmallFunction fn, EventClass cls);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  bool timer_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].armed;
  }
  void timer_cancel(std::uint32_t slot, std::uint32_t generation) {
    if (!timer_pending(slot, generation)) return;
    EventSlot& event = slots_[slot];
    event.armed = false;
    if (!event.lazy && event.at <= horizon_) --active_in_horizon_;
  }

  // --- Ready queue (both engines) ------------------------------------------
  // The wheel places an entry by the highest byte in which its tick differs
  // from cur_tick_ (the wheel cursor): level = that byte's index, bucket =
  // the entry's tick byte at that level. Because the entry's higher bytes
  // equal the cursor's and its level byte is strictly greater, every bucket
  // insertion lands strictly ahead of the cursor at its level — buckets
  // never wrap, and a forward bitmap scan per level is a complete search for
  // the next pending tick. Entries due at or before the cursor go straight
  // into `ready_`, kept sorted by (at, seq); entries differing above the top
  // level (≈19 h ahead, e.g. TimePoint::max() sentinels) wait in `far_`
  // until the wheels drain and the cursor re-anchors. See DESIGN.md, "Event
  // engine".
  static constexpr int kTickShift = 14;   ///< 2^14 ns ≈ 16 µs per tick
  static constexpr int kWheelLevels = 4;  ///< 256^4 ticks ≈ 19 h coverage
  static constexpr std::size_t kWheelSlots = 256;  ///< buckets per level

  static std::uint64_t tick_of(TimePoint at) {
    return static_cast<std::uint64_t>(at.ns()) >> kTickShift;
  }

  void queue_push(const HeapEntry& entry);
  /// The earliest pending entry, or nullptr when the queue is empty. Wheel:
  /// refills ready_ from the buckets as needed (amortized O(1)).
  const HeapEntry* queue_front();
  void queue_pop_front();
  void queue_clear();
  /// Visits every pending entry in unspecified order.
  template <typename Fn>
  void for_each_queued(Fn&& fn) const;

  void wheel_insert(const HeapEntry& entry);
  void ready_insert(const HeapEntry& entry);
  bool wheel_refill();
  void wheel_cascade(int level, std::size_t idx);
  void wheel_reanchor_to_far();
  int scan_occupancy(int level, std::size_t from) const;

  void fire_or_discard(const HeapEntry& entry);
  template <bool Quiescent>
  bool run_until_impl(TimePoint until);

  SchedulerEngine engine_;
  std::uint64_t queued_ = 0;  ///< entries pending across ready/buckets/far/heap

  std::vector<HeapEntry> heap_;  ///< kBinaryHeap engine: min-heap via std::push_heap

  std::vector<HeapEntry> ready_;  ///< due entries, sorted by (at, seq)
  std::size_t ready_pos_ = 0;     ///< drain cursor into ready_
  std::uint64_t cur_tick_ = 0;    ///< wheel cursor (tick units)
  std::array<std::array<std::vector<HeapEntry>, kWheelSlots>, kWheelLevels> buckets_;
  std::uint64_t occupancy_[kWheelLevels][kWheelSlots / 64] = {};
  std::vector<HeapEntry> far_;  ///< beyond wheel coverage; re-placed on drain
  std::vector<HeapEntry> cascade_scratch_;  ///< reused by cascade/re-anchor

  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_;
  BufferPool buffers_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_stamp_ = 1;  ///< 0 is "never scheduled"; never rewound
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;

  // Quiescence tracking for deterministic early-exit: armed kActive events
  // with time <= horizon_. Maintained on schedule/fire/cancel; recomputed by
  // set_quiescence_horizon and restore().
  TimePoint horizon_ = TimePoint::max();
  std::uint64_t active_in_horizon_ = 0;

  // Watchdog state: event_limit is an absolute (executed_ + cancelled_)
  // threshold computed at arm time, 0 when disarmed.
  std::uint64_t watchdog_event_limit_ = 0;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
  double watchdog_wall_seconds_ = 0.0;  ///< last armed wall budget, for capture()
  bool watchdog_wall_armed_ = false;
  std::uint32_t watchdog_wall_countdown_ = kWallCheckInterval;
  WatchdogTrip watchdog_trip_ = WatchdogTrip::kNone;
  std::uint64_t watchdog_trips_total_ = 0;  ///< for export_metrics
};

inline void Timer::cancel() {
  if (scheduler_ != nullptr) scheduler_->timer_cancel(slot_, generation_);
}

inline bool Timer::pending() const {
  return scheduler_ != nullptr && scheduler_->timer_pending(slot_, generation_);
}

}  // namespace snake::sim
