#include "sim/dumbbell.h"

namespace snake::sim {

Dumbbell::Dumbbell(DumbbellConfig config) : config_(config) {
  using A = DumbbellAddresses;
  client1_ = &network_.add_node(A::kClient1, "client1");
  client2_ = &network_.add_node(A::kClient2, "client2");
  server1_ = &network_.add_node(A::kServer1, "server1");
  server2_ = &network_.add_node(A::kServer2, "server2");
  router_left_ = &network_.add_node(A::kRouterLeft, "routerL");
  router_right_ = &network_.add_node(A::kRouterRight, "routerR");

  LinkConfig access;
  access.rate_bps = config_.access_rate_bps;
  access.delay = config_.access_delay;
  access.queue_limit_packets = config_.access_queue_packets;

  auto [c1_to_rl, rl_to_c1] = network_.connect(*client1_, *router_left_, access);
  auto [c2_to_rl, rl_to_c2] = network_.connect(*client2_, *router_left_, access);
  auto [s1_to_rr, rr_to_s1] = network_.connect(*server1_, *router_right_, access);
  auto [s2_to_rr, rr_to_s2] = network_.connect(*server2_, *router_right_, access);

  LinkConfig bottleneck;
  bottleneck.rate_bps = config_.bottleneck_rate_bps;
  bottleneck.delay = config_.bottleneck_delay;
  bottleneck.queue_limit_packets = config_.bottleneck_queue_packets;
  bottleneck.drop_policy = config_.bottleneck_drop_policy;
  auto [lr, rl] = network_.connect(*router_left_, *router_right_, bottleneck);
  bottleneck_lr_ = lr;
  bottleneck_rl_ = rl;

  // Leaf nodes default-route to their router.
  client1_->set_default_route(c1_to_rl);
  client2_->set_default_route(c2_to_rl);
  server1_->set_default_route(s1_to_rr);
  server2_->set_default_route(s2_to_rr);

  // Routers know their side's leaves and default across the bottleneck.
  router_left_->add_route(A::kClient1, rl_to_c1);
  router_left_->add_route(A::kClient2, rl_to_c2);
  router_left_->set_default_route(bottleneck_lr_);
  router_right_->add_route(A::kServer1, rr_to_s1);
  router_right_->add_route(A::kServer2, rr_to_s2);
  router_right_->set_default_route(bottleneck_rl_);
}

bool Dumbbell::config_equals(const DumbbellConfig& other) const {
  const DumbbellConfig& c = config_;
  return c.access_rate_bps == other.access_rate_bps && c.access_delay == other.access_delay &&
         c.access_queue_packets == other.access_queue_packets &&
         c.bottleneck_rate_bps == other.bottleneck_rate_bps &&
         c.bottleneck_delay == other.bottleneck_delay &&
         c.bottleneck_queue_packets == other.bottleneck_queue_packets &&
         c.bottleneck_drop_policy == other.bottleneck_drop_policy;
}

}  // namespace snake::sim
