// Interception hook used by the attack proxy.
//
// The paper modifies NS-3's tap-bridge so packets to or from a designated
// malicious node pass through the attack proxy. Here, a PacketFilter can be
// attached to a node's access link; it sees every packet in both directions
// and decides per packet whether the network forwards it. The filter can
// also hand packets (modified copies, delayed originals, spoofed
// injections) back to the network through an Injector, which bypasses the
// filter so proxy-made packets are not re-intercepted.
#pragma once

#include "sim/packet.h"
#include "util/time.h"

namespace snake::sim {

/// Which way a packet is flowing relative to the filtered (malicious) node.
enum class FilterDirection {
  kEgress,   ///< leaving the filtered node toward the network
  kIngress,  ///< arriving from the network toward the filtered node
};

const char* to_string(FilterDirection direction);

/// Lets a filter place packets onto the wire. `direction` has the same
/// meaning as in PacketFilter::on_packet: kEgress continues toward the
/// network, kIngress continues toward the filtered node.
class Injector {
 public:
  virtual ~Injector() = default;
  virtual void inject(Packet packet, FilterDirection direction, Duration delay) = 0;
  virtual TimePoint now() const = 0;
};

/// Verdict for the original packet.
enum class FilterVerdict {
  kForward,  ///< deliver normally
  kConsume,  ///< the filter took ownership (dropped, delayed, batched, ...)
};

class PacketFilter {
 public:
  virtual ~PacketFilter() = default;

  /// Called for every packet crossing the filtered link. The filter may
  /// mutate `packet` in place before returning kForward.
  virtual FilterVerdict on_packet(Packet& packet, FilterDirection direction,
                                  Injector& injector) = 0;
};

}  // namespace snake::sim
