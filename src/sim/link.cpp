#include "sim/link.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace snake::sim {

Link::Link(Scheduler& scheduler, LinkConfig config, std::function<void(Packet)> sink)
    : scheduler_(scheduler),
      config_(std::move(config)),
      sink_(std::move(sink)),
      drop_rng_(config_.drop_rng_seed) {}

void Link::send(Packet packet) {
  if (busy_) {
    if (queue_.size() >= config_.queue_limit_packets) {
      ++packets_dropped_;
      if (config_.drop_policy == DropPolicy::kRandom && !queue_.empty()) {
        // Evict a random victim among queued + arriving; if the victim is a
        // queued packet, the arrival takes its slot.
        std::size_t victim = static_cast<std::size_t>(drop_rng_.uniform(0, queue_.size()));
        if (victim < queue_.size()) {
          SNAKE_TRACE << config_.name << ": queue full, evicting queued packet id="
                      << queue_[victim].id;
          scheduler_.buffer_pool().release(std::move(queue_[victim].bytes));
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
          queue_.push_back(std::move(packet));
          return;
        }
      }
      SNAKE_TRACE << config_.name << ": queue full, dropping packet id=" << packet.id;
      scheduler_.buffer_pool().release(std::move(packet.bytes));
      return;
    }
    queue_.push_back(std::move(packet));
    queue_highwater_ = std::max(queue_highwater_, queue_depth());
    return;
  }
  start_transmission(std::move(packet));
}

void Link::start_transmission(Packet packet) {
  busy_ = true;
  queue_highwater_ = std::max(queue_highwater_, queue_depth());
  Duration tx = serialization_time(packet);
  ++packets_sent_;
  bytes_sent_ += packet.wire_size();
  // Arrival = serialization + propagation. Completion of serialization frees
  // the transmitter for the next queued packet.
  scheduler_.schedule_in(tx + config_.delay,
                         [this, p = std::move(packet)]() mutable { sink_(std::move(p)); });
  scheduler_.schedule_in(tx, [this] { transmission_complete(); });
}

void Link::transmission_complete() {
  busy_ = false;
  if (!queue_.empty()) {
    Packet next = std::move(queue_.front());
    queue_.pop_front();
    start_transmission(std::move(next));
  }
}

void Link::reset() {
  for (Packet& queued : queue_) scheduler_.buffer_pool().release(std::move(queued.bytes));
  queue_.clear();
  busy_ = false;
  packets_sent_ = 0;
  packets_dropped_ = 0;
  bytes_sent_ = 0;
  queue_highwater_ = 0;
  drop_rng_ = snake::Rng(config_.drop_rng_seed);
}

void Link::export_metrics(obs::MetricsRegistry& registry) const {
  const std::string prefix = "link." + config_.name + ".";
  registry.counter(prefix + "packets_forwarded") += packets_sent_;
  registry.counter(prefix + "packets_dropped") += packets_dropped_;
  registry.counter(prefix + "bytes_forwarded") += bytes_sent_;
  registry.gauge_max(prefix + "queue_highwater", static_cast<double>(queue_highwater_));
}

Duration Link::serialization_time(const Packet& packet) const {
  double bits = static_cast<double>(packet.wire_size()) * 8.0;
  return Duration::seconds(bits / config_.rate_bps);
}

}  // namespace snake::sim
