// The paper's test topology (Figure 3): a dumbbell.
//
//   client1 --\                     /-- server1
//              router_l ===== router_r
//   client2 --/    (bottleneck)     \-- server2
//
// Client 1 is the node the attack proxy is attached to; client 2 / server 2
// carry the competing connection used both as the fairness victim and as the
// performance reference.
#pragma once

#include <memory>

#include "sim/network.h"

namespace snake::sim {

struct DumbbellConfig {
  // Access links: fast and short, so the bottleneck dominates.
  double access_rate_bps = 100e6;
  Duration access_delay = Duration::millis(1);
  std::size_t access_queue_packets = 1000;

  // Bottleneck: where competition and congestion happen.
  // With a ~24 ms RTT the per-flow 64 kB receive-window cap (~22 Mbit/s)
  // sits far above the 5 Mbit/s fair share, so competing flows are
  // congestion-limited and AIMD — not the window clamp — arbitrates
  // bandwidth, as in the paper's testbed. Queue is ~2x the bandwidth-delay
  // product (10 Mbit/s * 24 ms = 30 kB = ~21 full-size packets).
  double bottleneck_rate_bps = 10e6;
  Duration bottleneck_delay = Duration::millis(10);
  std::size_t bottleneck_queue_packets = 40;
  /// Random-victim eviction on overflow: in a jitter-free simulator, pure
  /// drop-tail locks one deterministic "winner" flow out of all losses.
  sim::DropPolicy bottleneck_drop_policy = sim::DropPolicy::kRandom;
};

/// Well-known addresses in the dumbbell.
struct DumbbellAddresses {
  static constexpr Address kClient1 = 1;
  static constexpr Address kClient2 = 2;
  static constexpr Address kServer1 = 3;
  static constexpr Address kServer2 = 4;
  static constexpr Address kRouterLeft = 10;
  static constexpr Address kRouterRight = 11;
};

class Dumbbell {
 public:
  explicit Dumbbell(DumbbellConfig config = {});

  Network& network() { return network_; }
  Scheduler& scheduler() { return network_.scheduler(); }

  Node& client1() { return *client1_; }
  Node& client2() { return *client2_; }
  Node& server1() { return *server1_; }
  Node& server2() { return *server2_; }
  Node& router_left() { return *router_left_; }
  Node& router_right() { return *router_right_; }

  Link* bottleneck_left_to_right() { return bottleneck_lr_; }
  Link* bottleneck_right_to_left() { return bottleneck_rl_; }

  const DumbbellConfig& config() const { return config_; }

  /// Rewinds the whole topology for reuse by a ScenarioArena; the node
  /// graph, routes and link configurations stay, all scenario state goes.
  void reset() { network_.reset(); }

  /// Whether this dumbbell was built from exactly `other`'s parameters —
  /// the arena reuses a topology only for identical configurations.
  bool config_equals(const DumbbellConfig& other) const;

 private:
  DumbbellConfig config_;
  Network network_;
  Node* client1_ = nullptr;
  Node* client2_ = nullptr;
  Node* server1_ = nullptr;
  Node* server2_ = nullptr;
  Node* router_left_ = nullptr;
  Node* router_right_ = nullptr;
  Link* bottleneck_lr_ = nullptr;
  Link* bottleneck_rl_ = nullptr;
};

}  // namespace snake::sim
