#include "sim/network.h"

#include <utility>

namespace snake::sim {

Node& Network::add_node(Address address, std::string name) {
  nodes_.push_back(std::make_unique<Node>(scheduler_, address, std::move(name)));
  return *nodes_.back();
}

std::pair<Link*, Link*> Network::connect(Node& a, Node& b, LinkConfig config) {
  LinkConfig ab = config;
  ab.name = a.name() + "->" + b.name();
  LinkConfig ba = config;
  ba.name = b.name() + "->" + a.name();
  links_.push_back(std::make_unique<Link>(
      scheduler_, std::move(ab), [&b](Packet p) { b.receive_from_wire(std::move(p)); }));
  Link* a_to_b = links_.back().get();
  links_.push_back(std::make_unique<Link>(
      scheduler_, std::move(ba), [&a](Packet p) { a.receive_from_wire(std::move(p)); }));
  Link* b_to_a = links_.back().get();
  return {a_to_b, b_to_a};
}

void Network::enable_trace() {
  for (auto& node : nodes_) node->set_trace(&trace_);
}

void Network::reset() {
  // Links first so queued packets recycle their buffers into the pool the
  // scheduler keeps across the reset.
  for (auto& link : links_) link->reset();
  for (auto& node : nodes_) node->reset();
  scheduler_.reset();
  trace_.clear();
}

}  // namespace snake::sim
