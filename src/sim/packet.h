// The simulator's network-layer packet.
//
// A Packet is the unit moved across links and handed to protocol endpoints.
// It carries a minimal IP-like envelope (source/destination address and a
// protocol number) plus the raw transport bytes. The attack proxy operates on
// these raw bytes through the packet-format DSL, exactly as the paper's proxy
// operates on raw frames intercepted in NS-3's tap-bridge.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace snake::sim {

/// Node address; the dumbbell assigns small integers.
using Address = std::uint32_t;

/// IANA-style protocol numbers for the demux.
enum : std::uint8_t {
  kProtoTcp = 6,
  kProtoDccp = 33,
};

struct Packet {
  Address src = 0;
  Address dst = 0;
  std::uint8_t protocol = 0;
  Bytes bytes;  ///< transport header + application payload (wire format)

  /// Monotonic id assigned at send time; lets traces correlate duplicates.
  std::uint64_t id = 0;

  /// Bytes on the wire including the emulated network-layer overhead.
  std::size_t wire_size() const { return bytes.size() + kNetworkOverhead; }

  /// Emulated IP header cost, so that serialization delay and queue
  /// occupancy are realistic for small pure-ACK packets.
  static constexpr std::size_t kNetworkOverhead = 20;
};

}  // namespace snake::sim
