#include "sim/node.h"

#include <utility>

#include "util/logging.h"

namespace snake::sim {

/// Injector that re-enters the node's data path while bypassing the filter,
/// so proxy-created packets are not intercepted again.
class Node::NodeInjector : public Injector {
 public:
  explicit NodeInjector(Node& node) : node_(node) {}

  void inject(Packet packet, FilterDirection direction, Duration delay) override {
    if (packet.id == 0) packet.id = node_.next_packet_id_++ | (std::uint64_t(node_.address_) << 48);
    if (node_.trace_)
      node_.trace_->record(node_.scheduler_.now() + delay, TraceKind::kInject, node_.name_, packet);
    auto deliver = [&node = node_, direction, packet = std::move(packet)]() mutable {
      if (direction == FilterDirection::kEgress) {
        node.route_and_send(std::move(packet));
      } else {
        node.demux(packet);
        node.scheduler_.buffer_pool().release(std::move(packet.bytes));
      }
    };
    if (delay.is_zero()) {
      deliver();
    } else {
      node_.scheduler_.schedule_in(delay, std::move(deliver));
    }
  }

  TimePoint now() const override { return node_.scheduler_.now(); }

 private:
  Node& node_;
};

void Node::send_packet(Packet packet) {
  packet.src = address_;
  packet.id = next_packet_id_++ | (std::uint64_t(address_) << 48);
  if (trace_) trace_->record(scheduler_.now(), TraceKind::kSend, name_, packet);
  if (filter_ != nullptr) {
    NodeInjector injector(*this);
    FilterVerdict verdict = filter_->on_packet(packet, FilterDirection::kEgress, injector);
    if (verdict == FilterVerdict::kConsume) {
      // Consumed packets die here too; a filter that held on to the payload
      // moved the bytes out, leaving a zero-capacity no-op release.
      scheduler_.buffer_pool().release(std::move(packet.bytes));
      return;
    }
  }
  route_and_send(std::move(packet));
}

void Node::receive_from_wire(Packet packet) {
  if (packet.dst != address_) {
    // Transit traffic: this node is acting as a router.
    route_and_send(std::move(packet));
    return;
  }
  if (filter_ != nullptr) {
    NodeInjector injector(*this);
    FilterVerdict verdict = filter_->on_packet(packet, FilterDirection::kIngress, injector);
    if (verdict == FilterVerdict::kConsume) {
      scheduler_.buffer_pool().release(std::move(packet.bytes));
      return;
    }
  }
  demux(packet);
  // The packet dies here; its wire buffer goes back to the scenario pool.
  scheduler_.buffer_pool().release(std::move(packet.bytes));
}

void Node::inject_packet(Packet packet, FilterDirection direction) {
  if (packet.id == 0) packet.id = next_packet_id_++ | (std::uint64_t(address_) << 48);
  if (trace_) trace_->record(scheduler_.now(), TraceKind::kInject, name_, packet);
  if (direction == FilterDirection::kEgress) {
    route_and_send(std::move(packet));
  } else {
    demux(packet);
    scheduler_.buffer_pool().release(std::move(packet.bytes));
  }
}

void Node::reset() {
  protocols_.clear();
  filter_ = nullptr;
  trace_ = nullptr;
  next_packet_id_ = 1;
  // Routes survive: they describe the (static) topology, not scenario state.
}

void Node::register_protocol(std::uint8_t protocol, std::function<void(const Packet&)> handler) {
  protocols_[protocol] = std::move(handler);
}

void Node::route_and_send(Packet packet) {
  Link* link = route_for(packet.dst);
  if (link == nullptr) {
    SNAKE_WARN << name_ << ": no route to " << packet.dst << ", dropping";
    if (trace_) trace_->record(scheduler_.now(), TraceKind::kDrop, name_, packet);
    scheduler_.buffer_pool().release(std::move(packet.bytes));
    return;
  }
  link->send(std::move(packet));
}

void Node::demux(const Packet& packet) {
  if (trace_) trace_->record(scheduler_.now(), TraceKind::kDeliver, name_, packet);
  auto it = protocols_.find(packet.protocol);
  if (it == protocols_.end()) {
    SNAKE_TRACE << name_ << ": no handler for protocol " << int(packet.protocol);
    return;
  }
  it->second(packet);
}

Link* Node::route_for(Address dst) const {
  auto it = routes_.find(dst);
  if (it != routes_.end()) return it->second;
  return default_route_;
}

}  // namespace snake::sim
