// Container that owns the scheduler, nodes, links and trace of one scenario.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/node.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace snake::sim {

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  Trace& trace() { return trace_; }

  Node& add_node(Address address, std::string name);

  /// Connects two nodes with a duplex link (one Link per direction, both
  /// using `config`). Returns {a_to_b, b_to_a}.
  std::pair<Link*, Link*> connect(Node& a, Node& b, LinkConfig config);

  /// Enables packet capture on every node created so far.
  void enable_trace();

  /// Rewinds every component (scheduler, nodes, links, trace) to its
  /// just-constructed state while keeping the topology and warm pools —
  /// the scenario-arena reuse hook.
  void reset();

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  Scheduler scheduler_;
  Trace trace_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace snake::sim
