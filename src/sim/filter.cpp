#include "sim/filter.h"

namespace snake::sim {

const char* to_string(FilterDirection direction) {
  switch (direction) {
    case FilterDirection::kEgress: return "egress";
    case FilterDirection::kIngress: return "ingress";
  }
  return "?";
}

}  // namespace snake::sim
