#include "sim/scheduler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "obs/metrics.h"

namespace snake::sim {

namespace {

// Ascending (at, seq) — the execution order both engines must realize.
bool entry_less(const Scheduler::HeapEntry& a, const Scheduler::HeapEntry& b) {
  return b > a;
}

std::atomic<SchedulerEngine> g_default_engine{
#if defined(SNAKE_SCHEDULER_HEAP_DEFAULT) && SNAKE_SCHEDULER_HEAP_DEFAULT
    SchedulerEngine::kBinaryHeap
#else
    SchedulerEngine::kTimerWheel
#endif
};

}  // namespace

const char* to_string(SchedulerEngine engine) {
  switch (engine) {
    case SchedulerEngine::kTimerWheel: return "wheel";
    case SchedulerEngine::kBinaryHeap: return "heap";
  }
  return "?";
}

const char* to_string(WatchdogTrip trip) {
  switch (trip) {
    case WatchdogTrip::kNone: return "none";
    case WatchdogTrip::kEventBudget: return "event-budget";
    case WatchdogTrip::kWallClock: return "wall-clock";
  }
  return "?";
}

SchedulerEngine Scheduler::default_engine() {
  return g_default_engine.load(std::memory_order_relaxed);
}

void Scheduler::set_default_engine(SchedulerEngine engine) {
  g_default_engine.store(engine, std::memory_order_relaxed);
}

bool Scheduler::set_engine(SchedulerEngine engine) {
  if (queued_ != 0) return false;
  queue_clear();  // drop drained-ready residue / stale cursor
  engine_ = engine;
  return true;
}

// --- Ready queue -----------------------------------------------------------

void Scheduler::queue_push(const HeapEntry& entry) {
  ++queued_;
  if (engine_ == SchedulerEngine::kBinaryHeap) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
  } else {
    wheel_insert(entry);
  }
}

const Scheduler::HeapEntry* Scheduler::queue_front() {
  if (engine_ == SchedulerEngine::kBinaryHeap)
    return heap_.empty() ? nullptr : heap_.data();
  if (ready_pos_ >= ready_.size() && !wheel_refill()) return nullptr;
  return &ready_[ready_pos_];
}

void Scheduler::queue_pop_front() {
  --queued_;
  if (engine_ == SchedulerEngine::kBinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
    heap_.pop_back();
  } else {
    ++ready_pos_;  // queue_front() established ready_[ready_pos_]
  }
}

void Scheduler::queue_clear() {
  heap_.clear();
  ready_.clear();
  ready_pos_ = 0;
  far_.clear();
  for (int level = 0; level < kWheelLevels; ++level) {
    for (std::size_t word = 0; word < kWheelSlots / 64; ++word) {
      std::uint64_t bits = occupancy_[level][word];
      while (bits != 0) {
        int bit = std::countr_zero(bits);
        bits &= bits - 1;
        buckets_[level][(word << 6) + static_cast<std::size_t>(bit)].clear();
      }
      occupancy_[level][word] = 0;
    }
  }
  cur_tick_ = 0;
  queued_ = 0;
}

template <typename Fn>
void Scheduler::for_each_queued(Fn&& fn) const {
  if (engine_ == SchedulerEngine::kBinaryHeap) {
    for (const HeapEntry& e : heap_) fn(e);
    return;
  }
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i) fn(ready_[i]);
  for (int level = 0; level < kWheelLevels; ++level) {
    for (std::size_t word = 0; word < kWheelSlots / 64; ++word) {
      std::uint64_t bits = occupancy_[level][word];
      while (bits != 0) {
        int bit = std::countr_zero(bits);
        bits &= bits - 1;
        for (const HeapEntry& e : buckets_[level][(word << 6) + static_cast<std::size_t>(bit)])
          fn(e);
      }
    }
  }
  for (const HeapEntry& e : far_) fn(e);
}

void Scheduler::wheel_insert(const HeapEntry& entry) {
  std::uint64_t t = tick_of(entry.at);
  if (t <= cur_tick_) {
    ready_insert(entry);
    return;
  }
  // Highest byte in which t differs from the cursor picks the level; since
  // all bytes above it match the cursor and that byte is strictly greater
  // (t > cur_tick_), the bucket index is strictly ahead of the cursor's byte
  // at that level — buckets never wrap.
  std::uint64_t x = t ^ cur_tick_;
  int level = (63 - std::countl_zero(x)) >> 3;
  if (level >= kWheelLevels) {
    far_.push_back(entry);
    return;
  }
  std::size_t idx = (t >> (8 * level)) & (kWheelSlots - 1);
  buckets_[level][idx].push_back(entry);
  occupancy_[level][idx >> 6] |= 1ULL << (idx & 63);
}

void Scheduler::ready_insert(const HeapEntry& entry) {
  // Sorted insert into the undrained tail. The tail only holds the rest of
  // the current L0 span (a couple hundred microseconds of events), so the
  // upper_bound plus memmove touch a handful of 24-byte records; a callback
  // scheduling at the far end of the span still appends in O(1).
  auto it = std::upper_bound(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
                             ready_.end(), entry, entry_less);
  ready_.insert(it, entry);
}

bool Scheduler::wheel_refill() {
  ready_.clear();  // caller guarantees the previous run was fully drained
  ready_pos_ = 0;
  for (;;) {
    // Drain every occupied level-0 bucket ahead of the cursor into ready_ in
    // one pass and advance the cursor to the end of the span. Every level>=1
    // entry differs from the cursor in a higher byte, so the whole L0 span is
    // the global minimum prefix of the queue — sorting the batch by (at, seq)
    // realizes exactly the order a tick-at-a-time drain would have. Batching
    // matters: trial workloads average one event per ~100 ticks, so a
    // tick-at-a-time refill pays a full scan per pop.
    int idx = scan_occupancy(0, (cur_tick_ & (kWheelSlots - 1)) + 1);
    while (idx >= 0) {
      std::vector<HeapEntry>& bucket = buckets_[0][static_cast<std::size_t>(idx)];
      occupancy_[0][idx >> 6] &= ~(1ULL << (idx & 63));
      ready_.insert(ready_.end(), bucket.begin(), bucket.end());
      bucket.clear();
      idx = scan_occupancy(0, static_cast<std::size_t>(idx) + 1);
    }
    // The span is now fully in ready_; parking the cursor on its last tick
    // routes same-span schedules from draining callbacks into ready_ (sorted
    // insert) instead of behind the cursor where they would be missed.
    cur_tick_ |= kWheelSlots - 1;
    if (!ready_.empty()) {
      std::sort(ready_.begin(), ready_.end(), entry_less);
      return true;
    }
    bool advanced = false;
    for (int level = 1; level < kWheelLevels; ++level) {
      std::size_t from = ((cur_tick_ >> (8 * level)) & (kWheelSlots - 1)) + 1;
      int i = scan_occupancy(level, from);
      if (i >= 0) {
        wheel_cascade(level, static_cast<std::size_t>(i));
        advanced = true;
        break;
      }
    }
    if (advanced) continue;  // re-scan L0: the cascade refined one span
    if (!far_.empty()) {
      wheel_reanchor_to_far();
      continue;
    }
    return false;  // queue genuinely empty
  }
}

void Scheduler::wheel_cascade(int level, std::size_t idx) {
  // Advance the cursor to the span start of this bucket (bytes above `level`
  // unchanged, byte `level` = idx, lower bytes zero) and re-place its
  // entries one level of resolution finer. Entries landing exactly on the
  // span start drop straight into ready_.
  cascade_scratch_.clear();
  cascade_scratch_.swap(buckets_[level][idx]);
  occupancy_[level][idx >> 6] &= ~(1ULL << (idx & 63));
  std::uint64_t above_mask = ~((1ULL << (8 * (level + 1))) - 1);
  cur_tick_ = (cur_tick_ & above_mask) |
              (static_cast<std::uint64_t>(idx) << (8 * level));
  for (const HeapEntry& e : cascade_scratch_) wheel_insert(e);
  cascade_scratch_.clear();
}

void Scheduler::wheel_reanchor_to_far() {
  // Only reached with every wheel level empty, so re-anchoring the cursor to
  // the earliest far entry cannot strand anything behind it.
  std::uint64_t min_tick = tick_of(far_.front().at);
  for (const HeapEntry& e : far_) min_tick = std::min(min_tick, tick_of(e.at));
  cur_tick_ = min_tick;
  cascade_scratch_.clear();
  cascade_scratch_.swap(far_);
  for (const HeapEntry& e : cascade_scratch_) wheel_insert(e);
  cascade_scratch_.clear();
}

int Scheduler::scan_occupancy(int level, std::size_t from) const {
  if (from >= kWheelSlots) return -1;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupancy_[level][word] & (~0ULL << (from & 63));
  for (;;) {
    if (bits != 0)
      return static_cast<int>((word << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
    if (++word >= kWheelSlots / 64) return -1;
    bits = occupancy_[level][word];
  }
}

// --- Scheduling ------------------------------------------------------------

Timer Scheduler::do_schedule(TimePoint at, SmallFunction fn, EventClass cls) {
  if (at < now_) at = now_;
  std::uint32_t slot = acquire_slot();
  EventSlot& event = slots_[slot];
  event.fn = std::move(fn);
  event.at = at;
  event.stamp = next_stamp_++;
  event.armed = true;
  event.lazy = cls == EventClass::kLazy;
  if (!event.lazy && at <= horizon_) ++active_in_horizon_;
  queue_push(HeapEntry{at, next_seq_++, slot});
  return Timer(this, slot, event.generation);
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  EventSlot& event = slots_[index];
  event.fn.reset();
  event.armed = false;
  event.stamp = 0;  // slot content no longer matches any snapshot
  ++event.generation;  // invalidates every outstanding Timer for this slot
  free_.push_back(index);
}

void Scheduler::arm_watchdog(const WatchdogConfig& config) {
  watchdog_event_limit_ =
      config.max_events == 0 ? 0 : executed_ + cancelled_ + config.max_events;
  watchdog_wall_seconds_ = config.wall_seconds;
  watchdog_wall_armed_ = config.wall_seconds > 0.0;
  if (watchdog_wall_armed_) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(config.wall_seconds));
    watchdog_wall_countdown_ = kWallCheckInterval;
  }
  watchdog_trip_ = WatchdogTrip::kNone;
}

void Scheduler::set_quiescence_horizon(TimePoint horizon) {
  horizon_ = horizon;
  std::uint64_t count = 0;
  for_each_queued([&](const HeapEntry& e) {
    const EventSlot& slot = slots_[e.slot];
    if (slot.armed && !slot.lazy && e.at <= horizon_) ++count;
  });
  active_in_horizon_ = count;
}

// --- Execution -------------------------------------------------------------

void Scheduler::fire_or_discard(const HeapEntry& entry) {
  now_ = entry.at;
  EventSlot& event = slots_[entry.slot];
  if (event.armed) {
    if (!event.lazy && entry.at <= horizon_) --active_in_horizon_;
    // Move the callback out and recycle the slot *before* invoking, so the
    // callback observes its own timer as !pending() and may immediately
    // reuse the slot for a rescheduled event (the retransmit pattern).
    SmallFunction fn = std::move(event.fn);
    release_slot(entry.slot);
    ++executed_;
    fn();
  } else {
    // timer_cancel already settled the quiescence count.
    ++cancelled_;
    release_slot(entry.slot);
  }
}

template <bool Quiescent>
bool Scheduler::run_until_impl(TimePoint until) {
  bool cut = false;
  const HeapEntry* front = nullptr;
  while ((front = queue_front()) != nullptr) {
    // Watchdog gate: a tripped run stays stopped (so nested run_until calls
    // from callbacks unwind too) until re-armed or reset.
    if (watchdog_trip_ != WatchdogTrip::kNone) return false;
    if (watchdog_event_limit_ != 0 && executed_ + cancelled_ >= watchdog_event_limit_) {
      watchdog_trip_ = WatchdogTrip::kEventBudget;
      ++watchdog_trips_total_;
      return false;
    }
    if (watchdog_wall_armed_ && --watchdog_wall_countdown_ == 0) {
      watchdog_wall_countdown_ = kWallCheckInterval;
      if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
        watchdog_trip_ = WatchdogTrip::kWallClock;
        ++watchdog_trips_total_;
        return false;
      }
    }
    if constexpr (Quiescent) {
      if (active_in_horizon_ == 0) {
        cut = !(front->at > until);  // did the cut skip in-horizon entries?
        break;
      }
    }
    if (front->at > until) break;
    HeapEntry entry = *front;
    queue_pop_front();
    fire_or_discard(entry);
  }
  // Advance the clock to the horizon so "run for N seconds" works even when
  // the queue drains early — but not when draining completely (run_all).
  if (until != TimePoint::max() && now_ < until) now_ = until;
  return cut;
}

void Scheduler::run_until(TimePoint until) { run_until_impl<false>(until); }

bool Scheduler::run_until_quiescent(TimePoint until) {
  return run_until_impl<true>(until);
}

void Scheduler::run_all() { run_until(TimePoint::max()); }

std::uint64_t Scheduler::run_events(std::uint64_t count) {
  // Same gate order and pop mechanics as run_until, but bounded by pop count
  // instead of a time horizon: the snapshot layer replays a verified prefix
  // of a deterministic run and must stop on an exact event boundary.
  std::uint64_t popped = 0;
  const HeapEntry* front = nullptr;
  while (popped < count && (front = queue_front()) != nullptr) {
    if (watchdog_trip_ != WatchdogTrip::kNone) break;
    if (watchdog_event_limit_ != 0 && executed_ + cancelled_ >= watchdog_event_limit_) {
      watchdog_trip_ = WatchdogTrip::kEventBudget;
      ++watchdog_trips_total_;
      break;
    }
    if (watchdog_wall_armed_ && --watchdog_wall_countdown_ == 0) {
      watchdog_wall_countdown_ = kWallCheckInterval;
      if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
        watchdog_trip_ = WatchdogTrip::kWallClock;
        ++watchdog_trips_total_;
        break;
      }
    }
    HeapEntry entry = *front;
    queue_pop_front();
    fire_or_discard(entry);
    ++popped;
  }
  return popped;
}

// --- Snapshot --------------------------------------------------------------

bool Scheduler::capture(Snapshot& out) const {
  if (watchdog_trip_ != WatchdogTrip::kNone) return false;
  for (const EventSlot& slot : slots_) {
    if (slot.armed && !slot.fn.clonable()) return false;
  }
  out.slots.clear();
  out.slots.reserve(slots_.size());
  for (const EventSlot& slot : slots_) {
    Snapshot::Slot copy;
    copy.generation = slot.generation;
    copy.armed = slot.armed;
    copy.stamp = slot.stamp;
    copy.lazy = slot.lazy;
    if (slot.armed) copy.fn = slot.fn.clone();
    out.slots.push_back(std::move(copy));
  }
  out.heap.clear();
  out.heap.reserve(queued_);
  for_each_queued([&](const HeapEntry& e) { out.heap.push_back(e); });
  std::sort(out.heap.begin(), out.heap.end(), entry_less);  // canonical encoding
  out.free_slots = free_;
  out.now = now_;
  out.quiescence_horizon = horizon_;
  out.next_seq = next_seq_;
  out.executed = executed_;
  out.cancelled = cancelled_;
  out.watchdog_event_limit = watchdog_event_limit_;
  out.watchdog_wall_seconds = watchdog_wall_seconds_;
  out.watchdog_wall_armed = watchdog_wall_armed_;
  return true;
}

void Scheduler::restore(const Snapshot& snap) {
  // Shrinking the slab destroys callbacks scheduled after the capture point;
  // any Timer handle still naming a dropped slot reports !pending() via the
  // slot-bounds check.
  slots_.resize(snap.slots.size());
  for (std::size_t i = 0; i < snap.slots.size(); ++i) {
    const Snapshot::Slot& from = snap.slots[i];
    EventSlot& into = slots_[i];
    if (from.armed && into.stamp == from.stamp && into.fn) {
      // Copy-on-write: the stamp proves this slot was never fired, cancelled
      // away or re-armed since the capture, so the live callback IS the
      // captured one — keep it instead of destroy + re-clone.
    } else {
      into.fn = from.armed ? from.fn.clone() : SmallFunction();
    }
    into.stamp = from.stamp;
    into.generation = from.generation;
    into.armed = from.armed;
    into.lazy = from.lazy;
  }
  queue_clear();
  if (engine_ == SchedulerEngine::kBinaryHeap) {
    heap_ = snap.heap;  // sorted ascending is a valid min-heap as-is
    queued_ = heap_.size();
  } else {
    cur_tick_ = tick_of(snap.now);
    for (const HeapEntry& e : snap.heap) queue_push(e);  // ascending: appends O(1)
  }
  for (const HeapEntry& e : snap.heap) slots_[e.slot].at = e.at;
  free_ = snap.free_slots;
  now_ = snap.now;
  next_seq_ = snap.next_seq;
  executed_ = snap.executed;
  cancelled_ = snap.cancelled;
  horizon_ = snap.quiescence_horizon;
  std::uint64_t active = 0;
  for (const HeapEntry& e : snap.heap) {
    const EventSlot& slot = slots_[e.slot];
    if (slot.armed && !slot.lazy && e.at <= horizon_) ++active;
  }
  active_in_horizon_ = active;
  watchdog_event_limit_ = snap.watchdog_event_limit;
  watchdog_wall_seconds_ = snap.watchdog_wall_seconds;
  watchdog_wall_armed_ = snap.watchdog_wall_armed;
  if (watchdog_wall_armed_) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(watchdog_wall_seconds_));
  }
  watchdog_wall_countdown_ = kWallCheckInterval;
  watchdog_trip_ = WatchdogTrip::kNone;
  watchdog_trips_total_ = 0;
}

void Scheduler::reset() {
  queue_clear();
  free_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    EventSlot& event = slots_[i];
    event.fn.reset();  // destroys any still-pending callback
    event.armed = false;
    event.stamp = 0;
    ++event.generation;
    free_.push_back(i);
  }
  buffers_.reset_stats();
  now_ = TimePoint::origin();
  next_seq_ = 0;
  // next_stamp_ is deliberately NOT rewound: stamps stay globally unique so
  // a stale snapshot can never false-match a recycled slot (see restore()).
  executed_ = 0;
  cancelled_ = 0;
  horizon_ = TimePoint::max();
  active_in_horizon_ = 0;
  watchdog_event_limit_ = 0;
  watchdog_wall_armed_ = false;
  watchdog_wall_countdown_ = kWallCheckInterval;
  watchdog_trip_ = WatchdogTrip::kNone;
  watchdog_trips_total_ = 0;
}

void Scheduler::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("sim.events_executed") += executed_;
  registry.counter("sim.events_cancelled") += cancelled_;
  registry.gauge_max("sim.virtual_time_seconds", now_.to_seconds());
  registry.counter("sim.buffers_acquired") += buffers_.acquired();
  registry.counter("sim.buffers_reused") += buffers_.reused();
  registry.counter("sim.buffers_released") += buffers_.released();
  registry.counter("sim.watchdog_trips") += watchdog_trips_total_;
  registry.gauge_max("sim.event_pool_slots", static_cast<double>(slots_.size()));
}

}  // namespace snake::sim
