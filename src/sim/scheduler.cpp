#include "sim/scheduler.h"

#include <utility>

namespace snake::sim {

Timer Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{at, next_seq_++, std::move(fn), alive});
  return Timer(std::move(alive));
}

void Scheduler::run_until(TimePoint until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > until) break;
    Entry entry{top.at, top.seq, std::move(const_cast<Entry&>(top).fn), top.alive};
    queue_.pop();
    now_ = entry.at;
    if (*entry.alive) {
      *entry.alive = false;
      ++executed_;
      entry.fn();
    }
  }
  // Advance the clock to the horizon so "run for N seconds" works even when
  // the queue drains early — but not when draining completely (run_all).
  if (until != TimePoint::max() && now_ < until) now_ = until;
}

void Scheduler::run_all() { run_until(TimePoint::max()); }

}  // namespace snake::sim
