#include "sim/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace snake::sim {

const char* to_string(WatchdogTrip trip) {
  switch (trip) {
    case WatchdogTrip::kNone: return "none";
    case WatchdogTrip::kEventBudget: return "event-budget";
    case WatchdogTrip::kWallClock: return "wall-clock";
  }
  return "?";
}

Timer Scheduler::do_schedule(TimePoint at, SmallFunction fn) {
  if (at < now_) at = now_;
  std::uint32_t slot = acquire_slot();
  EventSlot& event = slots_[slot];
  event.fn = std::move(fn);
  event.armed = true;
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
  return Timer(this, slot, event.generation);
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  EventSlot& event = slots_[index];
  event.fn.reset();
  event.armed = false;
  ++event.generation;  // invalidates every outstanding Timer for this slot
  free_.push_back(index);
}

void Scheduler::arm_watchdog(const WatchdogConfig& config) {
  watchdog_event_limit_ =
      config.max_events == 0 ? 0 : executed_ + cancelled_ + config.max_events;
  watchdog_wall_seconds_ = config.wall_seconds;
  watchdog_wall_armed_ = config.wall_seconds > 0.0;
  if (watchdog_wall_armed_) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(config.wall_seconds));
    watchdog_wall_countdown_ = kWallCheckInterval;
  }
  watchdog_trip_ = WatchdogTrip::kNone;
}

void Scheduler::run_until(TimePoint until) {
  while (!heap_.empty()) {
    // Watchdog gate: a tripped run stays stopped (so nested run_until calls
    // from callbacks unwind too) until re-armed or reset.
    if (watchdog_trip_ != WatchdogTrip::kNone) return;
    if (watchdog_event_limit_ != 0 && executed_ + cancelled_ >= watchdog_event_limit_) {
      watchdog_trip_ = WatchdogTrip::kEventBudget;
      ++watchdog_trips_total_;
      return;
    }
    if (watchdog_wall_armed_ && --watchdog_wall_countdown_ == 0) {
      watchdog_wall_countdown_ = kWallCheckInterval;
      if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
        watchdog_trip_ = WatchdogTrip::kWallClock;
        ++watchdog_trips_total_;
        return;
      }
    }
    HeapEntry entry = heap_.front();
    if (entry.at > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
    heap_.pop_back();
    now_ = entry.at;
    EventSlot& event = slots_[entry.slot];
    if (event.armed) {
      // Move the callback out and recycle the slot *before* invoking, so the
      // callback observes its own timer as !pending() and may immediately
      // reuse the slot for a rescheduled event (the retransmit pattern).
      SmallFunction fn = std::move(event.fn);
      release_slot(entry.slot);
      ++executed_;
      fn();
    } else {
      ++cancelled_;
      release_slot(entry.slot);
    }
  }
  // Advance the clock to the horizon so "run for N seconds" works even when
  // the queue drains early — but not when draining completely (run_all).
  if (until != TimePoint::max() && now_ < until) now_ = until;
}

void Scheduler::run_all() { run_until(TimePoint::max()); }

std::uint64_t Scheduler::run_events(std::uint64_t count) {
  // Same gate order and pop mechanics as run_until, but bounded by pop count
  // instead of a time horizon: the snapshot layer replays a verified prefix
  // of a deterministic run and must stop on an exact event boundary.
  std::uint64_t popped = 0;
  while (popped < count && !heap_.empty()) {
    if (watchdog_trip_ != WatchdogTrip::kNone) break;
    if (watchdog_event_limit_ != 0 && executed_ + cancelled_ >= watchdog_event_limit_) {
      watchdog_trip_ = WatchdogTrip::kEventBudget;
      ++watchdog_trips_total_;
      break;
    }
    if (watchdog_wall_armed_ && --watchdog_wall_countdown_ == 0) {
      watchdog_wall_countdown_ = kWallCheckInterval;
      if (std::chrono::steady_clock::now() >= watchdog_deadline_) {
        watchdog_trip_ = WatchdogTrip::kWallClock;
        ++watchdog_trips_total_;
        break;
      }
    }
    HeapEntry entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
    heap_.pop_back();
    now_ = entry.at;
    EventSlot& event = slots_[entry.slot];
    if (event.armed) {
      SmallFunction fn = std::move(event.fn);
      release_slot(entry.slot);
      ++executed_;
      fn();
    } else {
      ++cancelled_;
      release_slot(entry.slot);
    }
    ++popped;
  }
  return popped;
}

bool Scheduler::capture(Snapshot& out) const {
  if (watchdog_trip_ != WatchdogTrip::kNone) return false;
  for (const EventSlot& slot : slots_) {
    if (slot.armed && !slot.fn.clonable()) return false;
  }
  out.slots.clear();
  out.slots.reserve(slots_.size());
  for (const EventSlot& slot : slots_) {
    Snapshot::Slot copy;
    copy.generation = slot.generation;
    copy.armed = slot.armed;
    if (slot.armed) copy.fn = slot.fn.clone();
    out.slots.push_back(std::move(copy));
  }
  out.heap = heap_;
  out.free_slots = free_;
  out.now = now_;
  out.next_seq = next_seq_;
  out.executed = executed_;
  out.cancelled = cancelled_;
  out.watchdog_event_limit = watchdog_event_limit_;
  out.watchdog_wall_seconds = watchdog_wall_seconds_;
  out.watchdog_wall_armed = watchdog_wall_armed_;
  return true;
}

void Scheduler::restore(const Snapshot& snap) {
  // Shrinking the slab destroys callbacks scheduled after the capture point;
  // any Timer handle still naming a dropped slot reports !pending() via the
  // slot-bounds check.
  slots_.resize(snap.slots.size());
  for (std::size_t i = 0; i < snap.slots.size(); ++i) {
    const Snapshot::Slot& from = snap.slots[i];
    EventSlot& into = slots_[i];
    into.fn = from.armed ? from.fn.clone() : SmallFunction();
    into.generation = from.generation;
    into.armed = from.armed;
  }
  heap_ = snap.heap;
  free_ = snap.free_slots;
  now_ = snap.now;
  next_seq_ = snap.next_seq;
  executed_ = snap.executed;
  cancelled_ = snap.cancelled;
  watchdog_event_limit_ = snap.watchdog_event_limit;
  watchdog_wall_seconds_ = snap.watchdog_wall_seconds;
  watchdog_wall_armed_ = snap.watchdog_wall_armed;
  if (watchdog_wall_armed_) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(watchdog_wall_seconds_));
  }
  watchdog_wall_countdown_ = kWallCheckInterval;
  watchdog_trip_ = WatchdogTrip::kNone;
  watchdog_trips_total_ = 0;
}

void Scheduler::reset() {
  heap_.clear();
  free_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    EventSlot& event = slots_[i];
    event.fn.reset();  // destroys any still-pending callback
    event.armed = false;
    ++event.generation;
    free_.push_back(i);
  }
  buffers_.reset_stats();
  now_ = TimePoint::origin();
  next_seq_ = 0;
  executed_ = 0;
  cancelled_ = 0;
  watchdog_event_limit_ = 0;
  watchdog_wall_armed_ = false;
  watchdog_wall_countdown_ = kWallCheckInterval;
  watchdog_trip_ = WatchdogTrip::kNone;
  watchdog_trips_total_ = 0;
}

void Scheduler::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("sim.events_executed") += executed_;
  registry.counter("sim.events_cancelled") += cancelled_;
  registry.gauge_max("sim.virtual_time_seconds", now_.to_seconds());
  registry.counter("sim.buffers_acquired") += buffers_.acquired();
  registry.counter("sim.buffers_reused") += buffers_.reused();
  registry.counter("sim.buffers_released") += buffers_.released();
  registry.counter("sim.watchdog_trips") += watchdog_trips_total_;
  registry.gauge_max("sim.event_pool_slots", static_cast<double>(slots_.size()));
}

}  // namespace snake::sim
