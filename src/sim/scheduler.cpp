#include "sim/scheduler.h"

#include <utility>

#include "obs/metrics.h"

namespace snake::sim {

Timer Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{at, next_seq_++,
                    std::make_shared<std::function<void()>>(std::move(fn)), alive});
  return Timer(std::move(alive));
}

void Scheduler::run_until(TimePoint until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > until) break;
    Entry entry = top;  // copies the shared handles; the queue stays intact
    queue_.pop();
    now_ = entry.at;
    if (*entry.alive) {
      *entry.alive = false;
      ++executed_;
      (*entry.fn)();
    } else {
      ++cancelled_;
    }
  }
  // Advance the clock to the horizon so "run for N seconds" works even when
  // the queue drains early — but not when draining completely (run_all).
  if (until != TimePoint::max() && now_ < until) now_ = until;
}

void Scheduler::run_all() { run_until(TimePoint::max()); }

void Scheduler::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("sim.events_executed") += executed_;
  registry.counter("sim.events_cancelled") += cancelled_;
  registry.gauge_max("sim.virtual_time_seconds", now_.to_seconds());
}

}  // namespace snake::sim
