// Point-to-point simulated link with bandwidth, propagation delay and a
// drop-tail queue — the building block of the dumbbell topology.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace snake::obs {
class MetricsRegistry;
}

namespace snake::sim {

class Node;

/// What to do when a packet arrives at a full queue.
enum class DropPolicy {
  kTail,    ///< drop the arriving packet (classic drop-tail)
  kRandom,  ///< drop a uniformly random packet among queued + arriving;
            ///< breaks the deterministic lockout/phase effects drop-tail
            ///< suffers in a jitter-free simulator (cf. RFC 2309 section 4)
};

struct LinkConfig {
  double rate_bps = 100e6;                       ///< transmission rate
  Duration delay = Duration::millis(5);          ///< one-way propagation delay
  std::size_t queue_limit_packets = 100;         ///< queue capacity
  DropPolicy drop_policy = DropPolicy::kTail;
  std::uint64_t drop_rng_seed = 0x5eed;
  std::string name = "link";
};

/// Unidirectional link. `send` enqueues the packet behind whatever is
/// currently serializing; a packet leaves the queue after its serialization
/// time and arrives at the sink after the propagation delay. Queue overflow
/// drops the packet (congestion signal for the transports under test).
class Link {
 public:
  Link(Scheduler& scheduler, LinkConfig config, std::function<void(Packet)> sink);

  void send(Packet packet);

  const LinkConfig& config() const { return config_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  /// Deepest the queue (including the packet in serialization) ever got.
  std::size_t queue_highwater() const { return queue_highwater_; }

  /// Dumps link counters into the registry as "link.<name>.*" (packets
  /// forwarded/dropped, bytes, queue high-watermark).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Rewinds to a just-constructed state for scenario-arena reuse: queue
  /// emptied (buffers recycled), counters zeroed, drop RNG re-seeded.
  void reset();

  /// Mutable per-run state frozen by the snapshot layer. The in-serialization
  /// packet is not part of this: its bytes live inside the scheduler's
  /// transmission-complete closure, which the scheduler snapshot clones.
  struct Snapshot {
    std::deque<Packet> queue;
    snake::Rng drop_rng{0};
    bool busy = false;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t bytes_sent = 0;
    std::size_t queue_highwater = 0;
  };

  Snapshot capture() const {
    return Snapshot{queue_,        drop_rng_,   busy_,          packets_sent_,
                    packets_dropped_, bytes_sent_, queue_highwater_};
  }

  void restore(const Snapshot& snap) {
    queue_ = snap.queue;
    drop_rng_ = snap.drop_rng;
    busy_ = snap.busy;
    packets_sent_ = snap.packets_sent;
    packets_dropped_ = snap.packets_dropped;
    bytes_sent_ = snap.bytes_sent;
    queue_highwater_ = snap.queue_highwater;
  }

 private:
  void start_transmission(Packet packet);
  void transmission_complete();
  Duration serialization_time(const Packet& packet) const;

  Scheduler& scheduler_;
  LinkConfig config_;
  std::function<void(Packet)> sink_;
  snake::Rng drop_rng_;
  std::deque<Packet> queue_;
  bool busy_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::size_t queue_highwater_ = 0;
};

}  // namespace snake::sim
