// Packet capture for scenarios — the reproduction's tcpdump.
//
// The paper manually inspects packet captures to separate hitseqwindow false
// positives from real attacks; tests and the campaign's false-positive
// classifier use this trace the same way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.h"
#include "util/time.h"

namespace snake::sim {

enum class TraceKind {
  kSend,     ///< endpoint handed packet to the network
  kDeliver,  ///< packet delivered to an endpoint's protocol handler
  kDrop,     ///< packet dropped (queue overflow or filter)
  kInject,   ///< packet created by the attack proxy
};

const char* to_string(TraceKind kind);

struct TraceEntry {
  TimePoint at;
  TraceKind kind = TraceKind::kSend;
  std::string where;  ///< node or link name
  Packet packet;
};

class Trace {
 public:
  explicit Trace(std::size_t max_entries = 1 << 20) : max_entries_(max_entries) {}

  void record(TimePoint at, TraceKind kind, std::string where, const Packet& packet);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t dropped_records() const { return dropped_records_; }
  void clear() { entries_.clear(); dropped_records_ = 0; }

  /// Count of entries matching a predicate-friendly triple; convenience for
  /// tests ("how many RSTs did the proxy inject?").
  std::size_t count(TraceKind kind) const;

 private:
  std::size_t max_entries_;
  std::vector<TraceEntry> entries_;
  std::size_t dropped_records_ = 0;
};

}  // namespace snake::sim
