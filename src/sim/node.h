// A simulated host or router.
//
// Endpoint nodes run transport endpoints (registered per protocol number);
// router nodes forward by a static routing table. A node may carry a
// PacketFilter — the attack proxy — which intercepts every packet the node
// sends or receives, mirroring the paper's designated "malicious node" whose
// tap-bridge traffic flows through the proxy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/filter.h"
#include "sim/link.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace snake::sim {

class Node {
 public:
  Node(Scheduler& scheduler, Address address, std::string name)
      : scheduler_(scheduler), address_(address), name_(std::move(name)) {}

  Address address() const { return address_; }
  const std::string& name() const { return name_; }
  Scheduler& scheduler() { return scheduler_; }

  /// Transport endpoints call this to put a packet on the wire. The source
  /// address is stamped, the packet id assigned, and the node's filter (if
  /// any) consulted before routing.
  void send_packet(Packet packet);

  /// Called by an inbound link when a packet arrives at this node. Packets
  /// addressed here are filtered (ingress) then demuxed; transit packets are
  /// forwarded.
  void receive_from_wire(Packet packet);

  /// Puts a packet into the data path bypassing the filter — the attack
  /// proxy's injection primitive. kEgress routes toward the network without
  /// rewriting the (possibly spoofed) source address; kIngress delivers up
  /// this node's local stack.
  void inject_packet(Packet packet, FilterDirection direction);

  /// Registers the handler for a transport protocol number.
  void register_protocol(std::uint8_t protocol, std::function<void(const Packet&)> handler);

  /// Static routing.
  void add_route(Address dst, Link* link) { routes_[dst] = link; }
  void set_default_route(Link* link) { default_route_ = link; }

  /// Attaches the attack proxy. Pass nullptr to detach.
  void set_filter(PacketFilter* filter) { filter_ = filter; }

  void set_trace(Trace* trace) { trace_ = trace; }

  /// Rewinds scenario state (protocol handlers, filter, trace, packet-id
  /// counter) for scenario-arena reuse; static routes are kept.
  void reset();

  /// Packet-id counter capture/restore for the snapshot layer. Handlers,
  /// filter and trace wiring are session-stable and stay untouched.
  std::uint64_t next_packet_id() const { return next_packet_id_; }
  void set_next_packet_id(std::uint64_t id) { next_packet_id_ = id; }

 private:
  class NodeInjector;

  void route_and_send(Packet packet);
  void demux(const Packet& packet);
  Link* route_for(Address dst) const;

  Scheduler& scheduler_;
  Address address_;
  std::string name_;
  std::map<std::uint8_t, std::function<void(const Packet&)>> protocols_;
  std::map<Address, Link*> routes_;
  Link* default_route_ = nullptr;
  PacketFilter* filter_ = nullptr;
  Trace* trace_ = nullptr;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace snake::sim
