#include "sim/trace.h"

namespace snake::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kInject: return "inject";
  }
  return "?";
}

void Trace::record(TimePoint at, TraceKind kind, std::string where, const Packet& packet) {
  if (entries_.size() >= max_entries_) {
    ++dropped_records_;
    return;
  }
  entries_.push_back(TraceEntry{at, kind, std::move(where), packet});
}

std::size_t Trace::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.kind == kind) ++n;
  return n;
}

}  // namespace snake::sim
