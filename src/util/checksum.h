// Internet checksum (RFC 1071), as used by both TCP and DCCP headers.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace snake {

/// One's-complement 16-bit Internet checksum over the buffer (padded with a
/// zero byte if the length is odd).
std::uint16_t internet_checksum(const Bytes& data);

/// Convenience: returns true when the buffer's embedded checksum verifies.
/// `checksum_offset` is the byte offset of the 16-bit checksum field; the
/// field is treated as zero during computation, per RFC 1071 usage.
bool verify_embedded_checksum(const Bytes& data, std::size_t checksum_offset);

/// Computes and stores the checksum into the buffer at `checksum_offset`.
void fill_embedded_checksum(Bytes& data, std::size_t checksum_offset);

}  // namespace snake
