// Internet checksum (RFC 1071), as used by both TCP and DCCP headers.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace snake {

/// One's-complement 16-bit Internet checksum over the buffer (padded with a
/// zero byte if the length is odd).
std::uint16_t internet_checksum(const Bytes& data);

/// Convenience: returns true when the buffer's embedded checksum verifies.
/// `checksum_offset` is the byte offset of the 16-bit checksum field; the
/// field is treated as zero during computation, per RFC 1071 usage.
bool verify_embedded_checksum(const Bytes& data, std::size_t checksum_offset);

/// Computes and stores the checksum into the buffer at `checksum_offset`.
void fill_embedded_checksum(Bytes& data, std::size_t checksum_offset);

namespace checksum_detail {

/// The two interchangeable implementations behind the public functions,
/// exposed so the differential test can pin them against each other.
/// `zero_at` is the byte offset of a 16-bit field treated as zero, or
/// `std::size_t(-1)` for none.
///
/// checksum_scalar: the reference 2-bytes-per-iteration loop.
/// checksum_fast:   dispatcher — checksum_avx2 for >=64-byte buffers when
///                  the CPU supports it, else 16 bytes per iteration via
///                  64-bit byte-lane accumulators (scalar loop on
///                  big-endian hosts).
/// checksum_avx2:   32 bytes per iteration via PSADBW byte-column sums;
///                  compiled with a target attribute and only called behind
///                  checksum_has_avx2() (aliases checksum_scalar off x86-64).
std::uint16_t checksum_scalar(const Bytes& data, std::size_t zero_at);
std::uint16_t checksum_fast(const Bytes& data, std::size_t zero_at);
std::uint16_t checksum_avx2(const Bytes& data, std::size_t zero_at);

/// True when this process can run the AVX2 kernel.
bool checksum_has_avx2();

}  // namespace checksum_detail

}  // namespace snake
