// Simulated-time types used throughout the SNAKE reproduction.
//
// All simulator components measure time in integer nanoseconds of *virtual*
// time. Strong types keep durations and absolute instants from being mixed
// up, and integer arithmetic keeps event ordering exact and deterministic
// (no floating-point drift between runs).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace snake {

/// A span of virtual time, in nanoseconds. May be negative in intermediate
/// arithmetic but is non-negative wherever it is used to schedule events.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t u) { return Duration(u * 1000); }
  static constexpr Duration millis(std::int64_t m) { return Duration(m * 1000000); }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr bool is_zero() const { return ns_ == 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant of virtual time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint(n); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Renders a time value like "12.345678s" for logs and traces.
std::string format_seconds(double seconds);

}  // namespace snake
