#include "util/rng.h"

namespace snake {

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform01() < probability;
}

Rng Rng::fork() {
  // Mix two draws so sibling forks do not overlap trivially.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b * 0x9E3779B97F4A7C15ULL));
}

}  // namespace snake
