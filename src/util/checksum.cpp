#include "util/checksum.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace snake {

namespace {
constexpr std::size_t kNoZeroField = static_cast<std::size_t>(-1);

/// Removes the two bytes at `zero_at` from an unfolded big-endian word sum —
/// that is how a header checksum field is excluded from its own computation.
/// Exact because the accumulator never wraps for any buffer the simulator can
/// produce (big-endian position: even offsets are high bytes, odd low bytes).
void subtract_zeroed_field(std::uint64_t& sum, const std::uint8_t* p, std::size_t n,
                           std::size_t zero_at) {
  for (std::size_t b = zero_at; b < zero_at + 2 && b < n; ++b)
    sum -= static_cast<std::uint32_t>((b % 2 == 0) ? p[b] << 8 : p[b]);
}

std::uint16_t fold_and_complement(std::uint64_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

}  // namespace

namespace checksum_detail {

std::uint16_t checksum_scalar(const Bytes& data, std::size_t zero_at) {
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    sum += static_cast<std::uint32_t>((p[i] << 8) | p[i + 1]);
  if (i < n) sum += static_cast<std::uint32_t>(p[i] << 8);  // odd-length pad
  if (zero_at != kNoZeroField) subtract_zeroed_field(sum, p, n, zero_at);
  return fold_and_complement(sum);
}

// Sums the buffer as 16-bit big-endian words, 16 bytes per iteration. The
// high and low bytes of each word are accumulated separately: in a 64-bit
// little-endian load, the high (even-offset) bytes sit in the even byte
// lanes, so `x & M` isolates them as four 16-bit fields and multiplying by K
// (1 in each field) parks their sum in the top field — a horizontal add with
// no shuffles. Per iteration each field sum is at most 8*255, so neither the
// multiply nor the 64-bit accumulators can overflow for any simulator
// buffer; one's-complement addition is associative, so the single fold at
// the end equals folding per word. (This function is on the per-packet hot
// path — checksum cost was ~35% of a campaign profile as a 2-bytes-per-
// iteration loop.)
std::uint16_t checksum_fast(const Bytes& data, std::size_t zero_at) {
#if defined(__x86_64__)
  if (checksum_has_avx2() && data.size() >= 64) return checksum_avx2(data, zero_at);
#endif
  if constexpr (std::endian::native != std::endian::little)
    return checksum_scalar(data, zero_at);
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  constexpr std::uint64_t M = 0x00FF00FF00FF00FFULL;  // even byte lanes
  constexpr std::uint64_t K = 0x0001000100010001ULL;  // horizontal-sum multiplier
  std::uint64_t hi = 0, lo = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t x, y;
    std::memcpy(&x, p + i, 8);
    std::memcpy(&y, p + i + 8, 8);
    hi += (((x & M) + (y & M)) * K) >> 48;
    lo += ((((x >> 8) & M) + ((y >> 8) & M)) * K) >> 48;
  }
  std::uint64_t sum = hi * 256 + lo;
  for (; i + 1 < n; i += 2)
    sum += static_cast<std::uint32_t>((p[i] << 8) | p[i + 1]);
  if (i < n) sum += static_cast<std::uint32_t>(p[i] << 8);  // odd-length pad
  if (zero_at != kNoZeroField) subtract_zeroed_field(sum, p, n, zero_at);
  return fold_and_complement(sum);
}

bool checksum_has_avx2() {
#if defined(__x86_64__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

#if defined(__x86_64__)
// Same byte-lane decomposition as checksum_fast, 32 bytes per iteration:
// PSADBW sums 8 unsigned bytes against zero into a 64-bit lane, so one
// SAD over the even-offset bytes (the `& 0x00FF` lanes of a little-endian
// load) and one over the odd-offset bytes (`>> 8`) accumulate the two byte
// columns exactly — no 16-bit lane can ever overflow because the
// accumulators are 64-bit from the first add. The caller guards on
// checksum_has_avx2(), so the target attribute is safe.
__attribute__((target("avx2")))
std::uint16_t checksum_avx2(const Bytes& data, std::size_t zero_at) {
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::uint64_t hi = 0, lo = 0;
  std::size_t i = 0;
  if (n >= 32) {
    const __m256i even = _mm256_set1_epi16(0x00FF);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc_hi = zero;
    __m256i acc_lo = zero;
    for (; i + 32 <= n; i += 32) {
      const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      acc_hi = _mm256_add_epi64(acc_hi, _mm256_sad_epu8(_mm256_and_si256(x, even), zero));
      acc_lo = _mm256_add_epi64(acc_lo, _mm256_sad_epu8(_mm256_srli_epi16(x, 8), zero));
    }
    alignas(32) std::uint64_t h[4];
    alignas(32) std::uint64_t l[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(h), acc_hi);
    _mm256_store_si256(reinterpret_cast<__m256i*>(l), acc_lo);
    hi = h[0] + h[1] + h[2] + h[3];
    lo = l[0] + l[1] + l[2] + l[3];
  }
  std::uint64_t sum = hi * 256 + lo;
  for (; i + 1 < n; i += 2)
    sum += static_cast<std::uint32_t>((p[i] << 8) | p[i + 1]);
  if (i < n) sum += static_cast<std::uint32_t>(p[i] << 8);  // odd-length pad
  if (zero_at != kNoZeroField) subtract_zeroed_field(sum, p, n, zero_at);
  return fold_and_complement(sum);
}
#else
std::uint16_t checksum_avx2(const Bytes& data, std::size_t zero_at) {
  return checksum_scalar(data, zero_at);
}
#endif

}  // namespace checksum_detail

std::uint16_t internet_checksum(const Bytes& data) {
  return checksum_detail::checksum_fast(data, kNoZeroField);
}

bool verify_embedded_checksum(const Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("verify_embedded_checksum: offset beyond buffer");
  std::uint16_t stored =
      static_cast<std::uint16_t>((data[checksum_offset] << 8) | data[checksum_offset + 1]);
  std::uint16_t computed = checksum_detail::checksum_fast(data, checksum_offset);
  return stored == computed;
}

void fill_embedded_checksum(Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("fill_embedded_checksum: offset beyond buffer");
  std::uint16_t computed = checksum_detail::checksum_fast(data, checksum_offset);
  data[checksum_offset] = static_cast<std::uint8_t>(computed >> 8);
  data[checksum_offset + 1] = static_cast<std::uint8_t>(computed & 0xFF);
}

}  // namespace snake
