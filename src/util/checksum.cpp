#include "util/checksum.h"

#include <stdexcept>

namespace snake {

namespace {
constexpr std::size_t kNoZeroField = static_cast<std::size_t>(-1);

// Sums the buffer as 16-bit big-endian words, treating the two bytes at
// `zero_at` (if any) as zero — that is how a header checksum field is
// excluded from its own computation.
//
// The word loop carries a 64-bit accumulator and folds once at the end;
// one's-complement addition is associative, so deferred folding yields the
// same value as folding after every word (this function is on the
// per-packet hot path — checksum cost was ~35% of a scenario run with the
// old byte-at-a-time/fold-per-word loop). The zeroed field is handled by
// subtracting its contribution afterwards, which is exact because the
// accumulator never wraps for any buffer the simulator can produce.
std::uint16_t checksum_with_zeroed_field(const Bytes& data, std::size_t zero_at) {
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    sum += static_cast<std::uint32_t>((p[i] << 8) | p[i + 1]);
  if (i < n) sum += static_cast<std::uint32_t>(p[i] << 8);  // odd-length pad
  if (zero_at != kNoZeroField) {
    // Remove what the field's bytes contributed above (big-endian position:
    // even offsets are high bytes, odd offsets low bytes).
    for (std::size_t b = zero_at; b < zero_at + 2 && b < n; ++b)
      sum -= static_cast<std::uint32_t>((b % 2 == 0) ? p[b] << 8 : p[b]);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}
}  // namespace

std::uint16_t internet_checksum(const Bytes& data) {
  return checksum_with_zeroed_field(data, kNoZeroField);
}

bool verify_embedded_checksum(const Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("verify_embedded_checksum: offset beyond buffer");
  std::uint16_t stored =
      static_cast<std::uint16_t>((data[checksum_offset] << 8) | data[checksum_offset + 1]);
  std::uint16_t computed = checksum_with_zeroed_field(data, checksum_offset);
  return stored == computed;
}

void fill_embedded_checksum(Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("fill_embedded_checksum: offset beyond buffer");
  std::uint16_t computed = checksum_with_zeroed_field(data, checksum_offset);
  data[checksum_offset] = static_cast<std::uint8_t>(computed >> 8);
  data[checksum_offset + 1] = static_cast<std::uint8_t>(computed & 0xFF);
}

}  // namespace snake
