#include "util/checksum.h"

#include <stdexcept>

namespace snake {

namespace {
constexpr std::size_t kNoZeroField = static_cast<std::size_t>(-1);

// Sums the buffer as 16-bit big-endian words, treating the two bytes at
// `zero_at` (if any) as zero — that is how a header checksum field is
// excluded from its own computation.
std::uint16_t checksum_with_zeroed_field(const Bytes& data, std::size_t zero_at) {
  auto byte_at = [&](std::size_t i) -> std::uint8_t {
    if (i >= data.size()) return 0;  // odd-length pad
    if (zero_at != kNoZeroField && (i == zero_at || i == zero_at + 1)) return 0;
    return data[i];
  };
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < data.size(); i += 2) {
    sum += static_cast<std::uint16_t>((byte_at(i) << 8) | byte_at(i + 1));
    while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}
}  // namespace

std::uint16_t internet_checksum(const Bytes& data) {
  return checksum_with_zeroed_field(data, kNoZeroField);
}

bool verify_embedded_checksum(const Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("verify_embedded_checksum: offset beyond buffer");
  std::uint16_t stored =
      static_cast<std::uint16_t>((data[checksum_offset] << 8) | data[checksum_offset + 1]);
  std::uint16_t computed = checksum_with_zeroed_field(data, checksum_offset);
  return stored == computed;
}

void fill_embedded_checksum(Bytes& data, std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size())
    throw std::out_of_range("fill_embedded_checksum: offset beyond buffer");
  std::uint16_t computed = checksum_with_zeroed_field(data, checksum_offset);
  data[checksum_offset] = static_cast<std::uint8_t>(computed >> 8);
  data[checksum_offset + 1] = static_cast<std::uint8_t>(computed & 0xFF);
}

}  // namespace snake
