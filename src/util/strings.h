// Small string utilities shared by the DSL parsers and report formatting.
#pragma once

#include <string>
#include <vector>

namespace snake {

/// Splits on a single-character delimiter; empty pieces are kept.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& text);

bool starts_with(const std::string& text, const std::string& prefix);
bool ends_with(const std::string& text, const std::string& suffix);

/// Lowercases ASCII letters.
std::string to_lower(const std::string& text);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace snake
