// Hot-path memory primitives: an in-place small-callback type and a
// recycled byte-buffer pool.
//
// A SNAKE campaign is millions of simulated events; every one of them used
// to cost two shared_ptr control blocks plus (for capture-heavy callbacks) a
// std::function heap allocation, and every packet hop allocated and freed
// its wire buffer. These primitives let the scheduler and the link/stack
// data path run the common schedule/fire/cancel and send/forward/deliver
// cycles without touching the allocator:
//
//  - SmallFunction: a move-only `void()` callable with 64 bytes of inline
//    storage — enough for a lambda capturing a whole sim::Packet — falling
//    back to the heap only for oversized captures.
//  - BufferPool: a free list of Bytes vectors; release() keeps a buffer's
//    capacity warm, acquire() hands it back cleared. Buffers that would
//    grow the free list past its cap are simply freed.
//
// Neither primitive is thread-safe: the simulator is single-threaded per
// scenario and every campaign executor owns its own pools (same ownership
// discipline as obs::MetricsRegistry).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace snake {

/// Move-only type-erased `void()` callable with inline storage for small
/// captures. Invoking an empty SmallFunction is undefined; check with
/// operator bool first (the scheduler never stores empty callbacks).
class SmallFunction {
 public:
  /// Sized so a lambda capturing `this` plus one sim::Packet (the link
  /// forwarding callback, the hottest capture in the system) stays inline.
  static constexpr std::size_t kInlineBytes = 64;

  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFunction>>>
  SmallFunction(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Whether the held callable can be duplicated with clone(). Empty
  /// SmallFunctions are trivially clonable; callables whose capture is not
  /// copy-constructible (move-only captures) are not.
  bool clonable() const { return ops_ == nullptr || ops_->clone != nullptr; }

  /// Returns an independent copy of the held callable, or an empty
  /// SmallFunction when *this is empty. Callers must check clonable() first:
  /// cloning a non-clonable callable is a logic error and asserts via the
  /// null ops table in debug builds. Cloning exists for the snapshot layer,
  /// which checkpoints the scheduler's armed event slots and later re-arms
  /// bit-identical copies of their callbacks.
  SmallFunction clone() const {
    SmallFunction out;
    if (ops_ != nullptr) {
      ops_->clone(out.storage_, storage_);
      out.ops_ = ops_;
    }
    return out;
  }

  /// Destroys the held callable (if any); leaves *this empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type F would avoid the heap fallback (exposed for
  /// tests and for asserting hot callbacks stay inline).
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    void (*relocate)(unsigned char* dst, unsigned char* src);  ///< move + destroy src
    void (*destroy)(unsigned char* storage);
    /// Copy-construct into dst without touching src; nullptr when the
    /// callable's capture is not copy-constructible.
    void (*clone)(unsigned char* dst, const unsigned char* src);
  };

  template <typename Fn>
  static constexpr void (*clone_inline())(unsigned char*, const unsigned char*) {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return [](unsigned char* dst, const unsigned char* src) {
        ::new (static_cast<void*>(dst)) Fn(*std::launder(reinterpret_cast<const Fn*>(src)));
      };
    } else {
      return nullptr;
    }
  }

  template <typename Fn>
  static constexpr void (*clone_heap())(unsigned char*, const unsigned char*) {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return [](unsigned char* dst, const unsigned char* src) {
        *reinterpret_cast<Fn**>(static_cast<void*>(dst)) =
            new Fn(**std::launder(reinterpret_cast<Fn* const*>(src)));
      };
    } else {
      return nullptr;
    }
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* dst, unsigned char* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      clone_inline<Fn>(),
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](unsigned char* dst, unsigned char* src) {
        *reinterpret_cast<Fn**>(static_cast<void*>(dst)) =
            *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](unsigned char* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      clone_heap<Fn>(),
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Free list of recycled Bytes buffers. acquire() returns an empty vector
/// whose capacity is warm from a previous use; release() takes a dead
/// buffer back. The free list is capped so a burst of giant buffers cannot
/// pin memory for the rest of a campaign.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_free = kDefaultMaxFree) : max_free_(max_free) {}

  Bytes acquire() {
    ++acquired_;
    if (!free_.empty()) {
      ++reused_;
      Bytes buf = std::move(free_.back());
      free_.pop_back();
      return buf;
    }
    return Bytes();
  }

  void release(Bytes&& buf) {
    if (buf.capacity() == 0) return;  // moved-from / never-written: nothing real to return
    ++released_;
    if (free_.size() >= max_free_) return;  // over cap: freed, not pooled
    buf.clear();
    free_.push_back(std::move(buf));
  }

  /// Total acquire() calls and how many were served from the free list.
  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t reused() const { return reused_; }
  /// Real (capacity-carrying) buffers handed back at a death point — the
  /// pool-balance signal: in a run where every packet dies at a release site,
  /// released() catches up to acquired() minus the packets still in flight.
  std::uint64_t released() const { return released_; }
  std::size_t free_count() const { return free_.size(); }

  /// Drops every pooled buffer (used when a scenario arena is torn down).
  void clear() { free_.clear(); }

  /// Zeroes the acquire/reuse counters without touching pooled buffers, so
  /// per-trial metrics stay per-trial when the pool outlives a scenario.
  void reset_stats() {
    acquired_ = 0;
    reused_ = 0;
    released_ = 0;
  }

  static constexpr std::size_t kDefaultMaxFree = 512;

 private:
  std::vector<Bytes> free_;
  std::size_t max_free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace snake
