// Big-endian byte serialization helpers.
//
// All wire formats in this repo (TCP, DCCP) are network byte order; these
// helpers are the single place where endianness is handled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace snake {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian integers to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u48(std::uint64_t v);  // low 48 bits, used by DCCP sequence numbers
  void u64(std::uint64_t v);
  void raw(const Bytes& data);
  void zeros(std::size_t count);

  std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Reads big-endian integers from a fixed buffer; throws std::out_of_range on
/// truncated input (callers treat that as a malformed packet).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u48();
  std::uint64_t u64();
  Bytes raw(std::size_t count);
  void skip(std::size_t count);

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t count) const {
    if (pos_ + count > size_) throw std::out_of_range("ByteReader: truncated buffer");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Reads/writes an arbitrary bit-aligned unsigned field within a buffer.
/// This powers the packet-format DSL codec: fields are described by bit
/// offset and bit width, exactly like the header diagrams in the RFCs.
std::uint64_t read_bits(const Bytes& buf, std::size_t bit_offset, std::size_t bit_width);
void write_bits(Bytes& buf, std::size_t bit_offset, std::size_t bit_width, std::uint64_t value);

/// Hex dump ("a1 b2 c3 ...") for traces and test failure messages.
std::string to_hex(const Bytes& data);

}  // namespace snake
