// Minimal leveled logger.
//
// The simulator and campaign engine are deliberately quiet by default so that
// campaigns over thousands of strategies do not drown in output; tests and
// examples can raise the level to trace packet flow.
#pragma once

#include <sstream>
#include <string>

namespace snake {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace snake

#define SNAKE_LOG_AT(lvl)                          \
  if (::snake::log_level() > (lvl)) {              \
  } else                                           \
    ::snake::detail::LogLine(lvl)

#define SNAKE_TRACE SNAKE_LOG_AT(::snake::LogLevel::kTrace)
#define SNAKE_DEBUG SNAKE_LOG_AT(::snake::LogLevel::kDebug)
#define SNAKE_INFO SNAKE_LOG_AT(::snake::LogLevel::kInfo)
#define SNAKE_WARN SNAKE_LOG_AT(::snake::LogLevel::kWarn)
#define SNAKE_ERROR SNAKE_LOG_AT(::snake::LogLevel::kError)
