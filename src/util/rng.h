// Deterministic random number generation.
//
// Every stochastic decision in the reproduction (probabilistic drops, random
// "lie" field values, initial sequence numbers, application jitter) flows
// through an explicitly-seeded Rng so that campaigns are exactly repeatable —
// SNAKE retests candidate attacks a second time to confirm repeatability, and
// determinism keeps that retest meaningful in the simulator.
#pragma once

#include <cstdint>
#include <random>

namespace snake {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(engine_()); }
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform01() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// True with the given probability (clamped to [0, 1]).
  bool chance(double probability);

  /// Derives an independent child stream; used to give each executor and each
  /// endpoint its own stream while keeping the whole campaign one-seed
  /// reproducible.
  Rng fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace snake
