#include "util/strings.h"

#include "util/time.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace snake {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string to_lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string format_seconds(double seconds) { return str_format("%.6fs", seconds); }

}  // namespace snake
