#include "util/bytes.h"

#include <cstdio>

namespace snake {

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u48(std::uint64_t v) {
  for (int shift = 40; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::raw(const Bytes& data) { out_.insert(out_.end(), data.begin(), data.end()); }

void ByteWriter::zeros(std::size_t count) { out_.insert(out_.end(), count, 0); }

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u48() {
  require(6);
  std::uint64_t v = 0;
  for (int i = 0; i < 6; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 6;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t count) {
  require(count);
  Bytes out(data_ + pos_, data_ + pos_ + count);
  pos_ += count;
  return out;
}

void ByteReader::skip(std::size_t count) {
  require(count);
  pos_ += count;
}

std::uint64_t read_bits(const Bytes& buf, std::size_t bit_offset, std::size_t bit_width) {
  if (bit_width > 64) throw std::out_of_range("read_bits: width > 64");
  if ((bit_offset + bit_width + 7) / 8 > buf.size())
    throw std::out_of_range("read_bits: beyond buffer");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bit_width; ++i) {
    std::size_t bit = bit_offset + i;
    std::uint8_t byte = buf[bit / 8];
    std::uint8_t b = (byte >> (7 - bit % 8)) & 1u;
    value = (value << 1) | b;
  }
  return value;
}

void write_bits(Bytes& buf, std::size_t bit_offset, std::size_t bit_width, std::uint64_t value) {
  if (bit_width > 64) throw std::out_of_range("write_bits: width > 64");
  if ((bit_offset + bit_width + 7) / 8 > buf.size())
    throw std::out_of_range("write_bits: beyond buffer");
  for (std::size_t i = 0; i < bit_width; ++i) {
    std::size_t bit = bit_offset + i;
    std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - bit % 8));
    bool set = (value >> (bit_width - 1 - i)) & 1u;
    if (set)
      buf[bit / 8] |= mask;
    else
      buf[bit / 8] &= static_cast<std::uint8_t>(~mask);
  }
}

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 3);
  char tmp[4];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(tmp, sizeof(tmp), i ? " %02x" : "%02x", data[i]);
    out += tmp;
  }
  return out;
}

}  // namespace snake
