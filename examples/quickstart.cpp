// Quickstart: run one baseline scenario and one attack strategy against the
// Linux 3.13 TCP implementation model, and show SNAKE's detection verdict.
//
//   $ ./examples/quickstart
//
// This exercises the whole public API surface: scenario configuration, the
// strategy model, the executor (run_scenario), and the detector.
#include <cstdio>

#include "snake/controller.h"
#include "snake/detector.h"
#include "snake/scenario.h"
#include "statemachine/tracker.h"
#include "strategy/strategy.h"
#include "tcp/profile.h"

int main() {
  using namespace snake;

  core::ScenarioConfig config;
  config.protocol = core::Protocol::kTcp;
  config.tcp_profile = tcp::linux_3_13_profile();
  config.test_duration = Duration::seconds(20.0);
  config.seed = 42;

  std::printf("== SNAKE quickstart ==\n");
  std::printf("Scenario: dumbbell, %.0f Mbit/s bottleneck, 2 competing HTTP downloads,\n",
              config.topology.bottleneck_rate_bps / 1e6);
  std::printf("implementation under test: %s\n\n", config.tcp_profile.name.c_str());

  // 1. Non-attack baseline.
  core::RunMetrics baseline = core::run_scenario(config, std::nullopt);
  std::printf("baseline: target=%.2f MB competing=%.2f MB stuck-sockets=%zu\n",
              baseline.target_bytes / 1e6, baseline.competing_bytes / 1e6,
              baseline.server1_stuck_sockets);

  // 2. One attack strategy: drop every RST the malicious client sends after
  //    its application exited mid-download (its TCP sits in FIN_WAIT_2) —
  //    the CLOSE_WAIT Resource Exhaustion attack.
  strategy::Strategy s;
  s.action = strategy::AttackAction::kDrop;
  s.packet_type = "RST";
  s.target_state = "FIN_WAIT_2";
  s.direction = strategy::TrafficDirection::kClientToServer;
  s.drop_probability = 100.0;
  std::printf("\nstrategy: %s\n", s.describe().c_str());

  core::RunMetrics attacked = core::run_scenario(config, s);
  std::printf("attacked: target=%.2f MB competing=%.2f MB stuck-sockets=%zu\n",
              attacked.target_bytes / 1e6, attacked.competing_bytes / 1e6,
              attacked.server1_stuck_sockets);
  for (const auto& [state, count] : attacked.server1_socket_states)
    std::printf("  server socket state: %s x%d\n", state.c_str(), count);
  std::printf("proxy: intercepted=%llu matched=%llu dropped=%llu\n",
              (unsigned long long)attacked.proxy.intercepted,
              (unsigned long long)attacked.proxy.matched,
              (unsigned long long)attacked.proxy.dropped);
  std::printf("client observations (state, type, dir):\n");
  for (const auto& o : attacked.client_observations)
    std::printf("  %s %s %s\n", o.state.c_str(), o.packet_type.c_str(),
                o.direction == statemachine::TriggerKind::kSend ? "snd" : "rcv");

  // 3. Detection.
  core::Detection verdict = core::detect(baseline, attacked);
  std::printf("\nverdict: %s\n", verdict.is_attack ? "ATTACK" : "no attack");
  for (const auto& reason : verdict.reasons) std::printf("  - %s\n", reason.c_str());
  return verdict.is_attack ? 0 : 1;
}
