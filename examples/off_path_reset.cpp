// Off-path Reset attack walkthrough (Figure 1(b) + Table II #4).
//
// An attacker that can only spoof packets — it cannot see the target
// connection — sweeps forged RSTs across the 2^32 sequence space at
// receive-window intervals (Watson's "slipping in the window"). One of them
// lands inside the victim's window and kills the connection.
#include <cstdio>

#include "packet/tcp_format.h"
#include "snake/detector.h"
#include "snake/scenario.h"
#include "tcp/profile.h"

int main() {
  using namespace snake;

  core::ScenarioConfig config;
  config.protocol = core::Protocol::kTcp;
  config.tcp_profile = tcp::linux_3_13_profile();
  config.test_duration = Duration::seconds(20.0);
  config.client1_exit_fraction = 1.0;
  config.seed = 17;

  strategy::Strategy s;
  s.action = strategy::AttackAction::kHitSeqWindow;
  s.packet_type = "RST";
  s.target_state = "ESTABLISHED";  // fire once the handshake completes
  s.direction = strategy::TrafficDirection::kServerToClient;
  strategy::InjectSpec spec;
  spec.packet_type = "RST";
  spec.fields = {{"data_offset", 5}};
  spec.spoof_toward_client = true;  // forged "from server2" toward client2
  spec.target_competing = true;     // the off-path connection of Figure 1(b)
  spec.seq_field = "seq";
  spec.seq_start = 123456;
  spec.seq_stride = 65535;  // one try per receive window
  spec.count = (1ULL << 32) / 65535 + 2;
  spec.pace_pps = 20000;
  s.inject = spec;

  std::printf("== Off-path TCP Reset attack ==\n\n");
  std::printf("sweep: %llu spoofed RSTs, stride %llu (receive-window intervals),\n",
              (unsigned long long)spec.count, (unsigned long long)spec.seq_stride);
  std::printf("paced at %.0f packets/s -> %.1f s to cover the whole sequence space\n\n",
              spec.pace_pps, spec.count / spec.pace_pps);

  core::RunMetrics baseline = core::run_scenario(config, std::nullopt);
  core::RunMetrics attacked = core::run_scenario(config, s);

  std::printf("victim (competing) connection: baseline %.2f MB -> attacked %.2f MB\n",
              baseline.competing_bytes / 1e6, attacked.competing_bytes / 1e6);
  std::printf("victim connection reset: %s\n", attacked.competing_reset ? "YES" : "no");
  std::printf("packets the attacker had to inject: %llu\n",
              (unsigned long long)attacked.proxy.injected);

  core::Detection d = core::detect(baseline, attacked);
  std::printf("\nSNAKE verdict: %s\n", d.is_attack ? "ATTACK" : "no attack");
  for (const auto& reason : d.reasons) std::printf("  - %s\n", reason.c_str());
  std::printf("classification: %s (the victim was actually reset, not just slowed\n"
              "by injection volume — the paper's false-positive check)\n",
              core::to_string(core::classify(s, packet::tcp_format(), d, attacked)));
  return d.is_attack ? 0 : 1;
}
