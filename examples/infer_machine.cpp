// State-machine inference walkthrough: learn a protocol's state machine
// from captured traffic and hand it to SNAKE.
//
// The paper relies on specification state machines but points to inference
// for proprietary protocols. This example captures a few TCP sessions off
// the simulator, learns an automaton with k-tails merging, prints it as dot
// (ready to feed back into parse_dot / the tracker / the strategy
// generator), and scores how well it explains a held-out session.
#include <cstdio>

#include "packet/tcp_format.h"
#include "sim/network.h"
#include "statemachine/inference.h"
#include "tcp/stack.h"
#include "util/rng.h"

using namespace snake;
using namespace snake::statemachine;

namespace {

class Recorder : public sim::PacketFilter {
 public:
  sim::FilterVerdict on_packet(sim::Packet& p, sim::FilterDirection dir,
                               sim::Injector&) override {
    if (p.protocol != sim::kProtoTcp) return sim::FilterVerdict::kForward;
    std::string type = packet::tcp_codec().classify(p.bytes);
    bool egress = dir == sim::FilterDirection::kEgress;
    client_trace.push_back({egress ? TriggerKind::kSend : TriggerKind::kReceive, type});
    server_trace.push_back({egress ? TriggerKind::kReceive : TriggerKind::kSend, type});
    return sim::FilterVerdict::kForward;
  }
  EndpointTrace client_trace;
  EndpointTrace server_trace;
};

/// Runs one full HTTP-ish session and returns what the capture point saw.
Recorder capture_session(int session) {
  Recorder recorder;
  sim::Network net;
  sim::Node& a = net.add_node(1, "client");
  sim::Node& b = net.add_node(2, "server");
  auto [ab, ba] = net.connect(a, b, sim::LinkConfig{});
  a.set_default_route(ab);
  b.set_default_route(ba);
  a.set_filter(&recorder);
  tcp::TcpStack client(a, tcp::linux_3_13_profile(), Rng(1 + session));
  tcp::TcpStack server(b, tcp::linux_3_13_profile(), Rng(100 + session));
  server.listen(80, [&](tcp::TcpEndpoint& ep) {
    tcp::TcpCallbacks cb;
    cb.on_established = [&ep, session] { ep.send(Bytes(15000 + 9000 * session, 1)); };
    cb.on_remote_close = [&ep] { ep.close(); };
    return cb;
  });
  tcp::TcpEndpoint* conn = &client.connect(2, 80, tcp::TcpCallbacks{});
  net.scheduler().run_until(TimePoint::origin() + Duration::seconds(5.0));
  conn->close();
  net.scheduler().run_until(TimePoint::origin() + Duration::seconds(10.0));
  return recorder;
}

}  // namespace

int main() {
  std::printf("== Learning a state machine from captured traffic ==\n\n");

  std::vector<EndpointTrace> client_traces, server_traces;
  EndpointTrace holdout;
  for (int session = 0; session < 5; ++session) {
    Recorder r = capture_session(session);
    std::printf("session %d: %zu events captured\n", session, r.client_trace.size());
    if (session == 4) {
      holdout = r.client_trace;
    } else {
      client_traces.push_back(std::move(r.client_trace));
      server_traces.push_back(std::move(r.server_trace));
    }
  }

  StateMachine learned =
      infer_state_machine("tcp_learned", client_traces, server_traces, {.k = 2});
  std::printf("\nlearned machine: %zu states, %zu transitions\n", learned.states().size(),
              learned.transitions().size());

  InferredAutomaton client_side = infer_automaton(client_traces, "C", {.k = 2});
  std::printf("held-out session explain score: %.1f%%\n\n",
              explain_score(client_side, holdout) * 100.0);

  std::printf("dot output (feed to parse_dot / the tracker / the generator):\n\n%s",
              to_dot(learned).c_str());
  return 0;
}
