// Run a bounded SNAKE campaign against one implementation and print what it
// found.
//
//   ./examples/campaign [tcp|dccp] [profile] [max-strategies]
//   ./examples/campaign tcp linux-3.0.0 400
//
// This is the paper's core loop: baseline run -> state-based strategy
// generation from observed (packet type, state) pairs -> parallel executors
// -> detection vs baseline -> repeatability retest -> classification.
#include <cstdio>
#include <cstring>
#include <string>

#include "snake/controller.h"
#include "strategy/generator.h"
#include "tcp/profile.h"

int main(int argc, char** argv) {
  using namespace snake;
  std::string protocol = argc > 1 ? argv[1] : "tcp";
  std::string profile = argc > 2 ? argv[2] : "linux-3.0.0";
  std::uint64_t cap = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300;

  core::CampaignConfig config;
  config.scenario.protocol =
      protocol == "dccp" ? core::Protocol::kDccp : core::Protocol::kTcp;
  if (config.scenario.protocol == core::Protocol::kTcp)
    config.scenario.tcp_profile = tcp::tcp_profile_by_name(profile);
  config.scenario.test_duration = Duration::seconds(10.0);
  config.generator = config.scenario.protocol == core::Protocol::kTcp
                         ? strategy::tcp_generator_config()
                         : strategy::dccp_generator_config();
  config.executors = 8;
  config.max_strategies = cap;
  config.on_progress = [](std::uint64_t done, std::uint64_t queued) {
    if (done % 50 == 0) {
      std::printf("  ... %llu strategies tested (%llu queued)\n",
                  (unsigned long long)done, (unsigned long long)queued);
      std::fflush(stdout);
    }
  };

  std::printf("== SNAKE campaign: %s / %s, budget %llu strategies ==\n\n", protocol.c_str(),
              config.scenario.protocol == core::Protocol::kTcp ? profile.c_str()
                                                               : "linux-3.13",
              (unsigned long long)cap);

  core::CampaignResult result = core::run_campaign(config);

  std::printf("\n%s\n%s\n\n", core::table1_header().c_str(), result.summary_row().c_str());
  std::printf("confirmed attack strategies:\n");
  for (const core::StrategyOutcome& o : result.found) {
    std::printf("  [%-14s] %s\n", to_string(o.cls), o.strat.describe().c_str());
    for (const std::string& reason : o.detection.reasons)
      std::printf("      - %s\n", reason.c_str());
  }
  if (result.found.empty())
    std::printf("  (none within this budget — raise max-strategies)\n");
  return 0;
}
