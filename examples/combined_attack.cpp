// Combined attack strategies — the paper's future-work extension, runnable.
//
// "Note that one can also consider more complex attack strategies that
// combine the basic attacks described above into strategies consisting of
// sequences of actions. We currently support only the basic attacks."
//
// This example shows why combinations matter: the CLOSE_WAIT Resource
// Exhaustion attack blocks the exited client's RSTs, but those RSTs can be
// observed in FIN_WAIT_1 *or* FIN_WAIT_2 depending on timing. Each
// single-state strategy on its own may leak an RST (one reaching the server
// cleans everything up); the combination covers all emitting states and
// wedges the server regardless.
#include <cstdio>

#include "snake/detector.h"
#include "snake/scenario.h"
#include "tcp/profile.h"

int main() {
  using namespace snake;
  using strategy::AttackAction;
  using strategy::Strategy;
  using strategy::TrafficDirection;

  core::ScenarioConfig config;
  config.protocol = core::Protocol::kTcp;
  config.tcp_profile = tcp::linux_3_0_profile();
  config.test_duration = Duration::seconds(20.0);
  config.seed = 5;

  auto drop_rst_in = [](const char* state) {
    Strategy s;
    s.action = AttackAction::kDrop;
    s.packet_type = "RST";
    s.target_state = state;
    s.direction = TrafficDirection::kClientToServer;
    return s;
  };

  core::RunMetrics baseline = core::run_scenario(config, std::nullopt);
  std::printf("== Combined attack strategies (CLOSE_WAIT blockade) ==\n\n");
  std::printf("baseline: stuck server sockets = %zu\n\n", baseline.server1_stuck_sockets);

  for (const char* state : {"FIN_WAIT_1", "FIN_WAIT_2"}) {
    core::RunMetrics single = core::run_scenario(config, drop_rst_in(state));
    std::printf("single   drop RST in %-10s -> stuck sockets = %zu, RSTs dropped = %llu\n",
                state, single.server1_stuck_sockets,
                (unsigned long long)single.proxy.dropped);
  }

  std::vector<Strategy> combo = {drop_rst_in("FIN_WAIT_1"), drop_rst_in("FIN_WAIT_2"),
                                 drop_rst_in("CLOSED")};
  core::RunMetrics combined = core::run_scenario(config, combo);
  std::printf("combined drop RST in FW1+FW2+CLOSED -> stuck sockets = %zu, RSTs dropped = %llu\n",
              combined.server1_stuck_sockets, (unsigned long long)combined.proxy.dropped);

  core::Detection d = core::detect(baseline, combined);
  std::printf("\ncombined verdict: %s", d.is_attack ? "ATTACK" : "no attack");
  for (const auto& reason : d.reasons) std::printf("\n  - %s", reason.c_str());
  std::printf("\n");
  for (const auto& [state, count] : combined.server1_socket_states)
    std::printf("  server socket state: %s x%d\n", state.c_str(), count);
  return d.is_attack ? 0 : 1;
}
