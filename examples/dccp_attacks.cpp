// The three previously-unknown DCCP attacks from the paper, demonstrated
// one after another against the Linux-3.13 DCCP (CCID-2) model.
#include <cstdio>

#include "packet/dccp_format.h"
#include "snake/detector.h"
#include "snake/scenario.h"

int main() {
  using namespace snake;
  using strategy::AttackAction;
  using strategy::InjectSpec;
  using strategy::LieSpec;
  using strategy::Strategy;
  using strategy::TrafficDirection;

  core::ScenarioConfig config;
  config.protocol = core::Protocol::kDccp;
  config.test_duration = Duration::seconds(20.0);
  config.seed = 23;

  core::RunMetrics baseline = core::run_scenario(config, std::nullopt);
  std::printf("== DCCP attacks (baseline goodput %.2f MB, clean teardown: %s) ==\n\n",
              baseline.target_bytes / 1e6, baseline.server1_stuck_sockets == 0 ? "yes" : "no");

  auto run = [&](const char* title, const Strategy& s, const char* mechanism) {
    core::RunMetrics attacked = core::run_scenario(config, s);
    core::Detection d = core::detect(baseline, attacked);
    std::printf("%s\n  %s\n  strategy: %s\n", title, mechanism, s.describe().c_str());
    std::printf("  goodput %.2fx of baseline; server sockets stuck: %zu; reset: %s\n",
                d.target_ratio, attacked.server1_stuck_sockets,
                attacked.target_reset ? "yes" : "no");
    std::printf("  verdict: %s\n\n", d.is_attack ? "ATTACK" : "no attack");
  };

  {
    Strategy s;
    s.action = AttackAction::kLie;
    s.packet_type = "DCCP-Ack";
    s.target_state = "OPEN";
    s.direction = TrafficDirection::kServerToClient;
    s.lie = LieSpec{"ack", LieSpec::Mode::kSet, 0x123456};
    run("1. Acknowledgment Mung Resource Exhaustion", s,
        "invalid acknowledgments pin the sender's CCID-2 at one packet per "
        "backed-off RTO;\n  the transmit queue cannot drain, so close() never "
        "completes and the server\n  holds the socket indefinitely");
  }
  {
    Strategy s;
    s.action = AttackAction::kLie;
    s.packet_type = "DCCP-Ack";
    s.target_state = "OPEN";
    s.direction = TrafficDirection::kServerToClient;
    s.lie = LieSpec{"seq", LieSpec::Mode::kAdd, 60};
    run("2. In-window Acknowledgment Sequence Number Modification", s,
        "a still-sequence-valid bump of the acks' sequence numbers makes the "
        "sender\n  acknowledge packets never sent; the receiver drops a window "
        "of data and\n  forces a Sync/SyncAck resynchronization every round");
  }
  {
    Strategy s;
    s.action = AttackAction::kInject;
    s.packet_type = "DCCP-Data";
    s.target_state = "REQUEST";
    s.direction = TrafficDirection::kServerToClient;
    InjectSpec spec;
    spec.packet_type = "DCCP-Data";
    spec.fields = {{"data_offset", 6}, {"x", 1}, {"seq", 424242}};
    spec.spoof_toward_client = true;
    spec.target_competing = false;
    s.inject = spec;
    run("3. REQUEST Connection Termination", s,
        "RFC 4340 checks the packet type BEFORE the sequence numbers in the "
        "REQUEST\n  state, so ANY non-Response packet with ARBITRARY sequence "
        "numbers resets the\n  nascent connection");
  }
  return 0;
}
