// SNAKE is protocol-agnostic: "the use of a standardized graph language
// like dot to represent the state machine enables the use of SNAKE on a
// variety of two-party protocols simply by swapping out the state machine
// and packet header descriptions."
//
// This example defines a brand-new toy transport ("PING/PONG with teardown")
// entirely through SNAKE's two user inputs — a header-format DSL string and
// a dot state machine — then drives the state tracker over a scripted packet
// exchange and generates the attack strategies SNAKE would schedule for it.
#include <cstdio>

#include "packet/codec.h"
#include "packet/format_dsl.h"
#include "statemachine/dot_parser.h"
#include "statemachine/tracker.h"
#include "strategy/generator.h"

int main() {
  using namespace snake;

  const char* header_dsl = R"(# toy ping/pong protocol
header pingpong 8 {
  kind     :  8 type;
  hop      :  8;
  token    : 16 sequence;
  checksum : 16 checksum;
  window   : 16 window;
}
type PING  kind mask 0xff value 1;
type PONG  kind mask 0xff value 2;
type BYE   kind mask 0xff value 3;
type BYEOK kind mask 0xff value 4;
)";

  const char* machine_dot = R"(digraph pingpong {
  IDLE    [initial="client"];
  WAIT    [initial="server"];
  IDLE    -> PINGING [label="snd:PING"];
  WAIT    -> TALKING [label="rcv:PING / snd:PONG"];
  PINGING -> TALKING [label="rcv:PONG"];
  TALKING -> DONE    [label="snd:BYE"];
  TALKING -> DONE    [label="rcv:BYE / snd:BYEOK"];
}
)";

  packet::HeaderFormat format = packet::parse_header_format(header_dsl);
  statemachine::StateMachine machine = statemachine::parse_dot(machine_dot);
  packet::Codec codec(format);

  std::printf("== Custom protocol: %s ==\n\n", format.protocol_name().c_str());
  std::printf("fields:");
  for (const auto& f : format.fields())
    std::printf(" %s(%zub,%s)", f.name.c_str(), f.bit_width, to_string(f.kind));
  std::printf("\nstates:");
  for (const auto& st : machine.states()) std::printf(" %s", st.c_str());
  std::printf("\n\n");

  // Drive the tracker over a scripted exchange (client id 1, server id 2).
  statemachine::ConnectionTracker tracker(machine, 1, 2, TimePoint::origin());
  struct Event { std::uint64_t src, dst; const char* type; };
  const Event script[] = {
      {1, 2, "PING"}, {2, 1, "PONG"}, {1, 2, "PING"}, {2, 1, "PONG"}, {1, 2, "BYE"},
  };
  std::int64_t t = 0;
  for (const Event& e : script) {
    tracker.observe_packet(e.src, e.dst, e.type, TimePoint::from_ns(t += 1000000));
    std::printf("  %s %llu->%llu   client=%s server=%s\n", e.type,
                (unsigned long long)e.src, (unsigned long long)e.dst,
                tracker.client().state().c_str(), tracker.server().state().c_str());
  }

  // Build & round-trip a packet through the generated codec.
  Bytes wire = codec.build("PONG", {{"token", 777}, {"window", 42}});
  std::printf("\nforged PONG: %s (classified %s, token=%llu)\n", to_hex(wire).c_str(),
              codec.classify(wire).c_str(),
              (unsigned long long)codec.get(wire, "token"));

  // Show the strategies SNAKE would generate for what it observed.
  strategy::GeneratorConfig gcfg;
  gcfg.inject_packet_types = {"PING", "BYE"};
  gcfg.sequence_space = 1 << 16;
  gcfg.window_stride = 16;
  strategy::StrategyGenerator gen(format, machine, gcfg);
  auto off = gen.off_path_strategies();
  auto client_side = gen.on_observations(tracker.client().observations(),
                                         tracker.server().observations());
  std::printf("\nstrategies generated: %zu malicious-client + %zu off-path\n",
              client_side.size(), off.size());
  std::printf("first few:\n");
  for (std::size_t i = 0; i < 5 && i < client_side.size(); ++i)
    std::printf("  %s\n", client_side[i].describe().c_str());
  return 0;
}
